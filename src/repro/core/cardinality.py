"""Learned set cardinality estimation (paper §4.2, evaluated in §8.2).

The estimator is a DeepSets regression model over subsets, trained on
log-scaled cardinalities.  The hybrid variant evicts hard-to-learn subsets
into an exact auxiliary map during guided training; queries check the map
first and only fall through to the model (paper Figure 5, left path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..nn.data import RaggedArray
from ..nn.serialize import pickled_size_bytes, state_dict_bytes
from ..reliability.faults import corrupt_prediction, corrupt_predictions
from ..sets.collection import SetCollection
from ..sets.inverted import InvertedIndex
from ..sets.subsets import cardinality_training_pairs
from .config import ModelConfig
from .hooks import UpdateNotifier
from .hybrid import OutlierRemovalConfig, guided_fit
from .scaling import LogMinMaxScaler
from .training import TrainConfig

__all__ = ["LearnedCardinalityEstimator"]


@dataclass
class _BuildReport:
    """What happened during construction (used by the benches)."""

    num_training_subsets: int = 0
    num_outliers: int = 0
    seconds_per_epoch: float = 0.0
    total_seconds: float = 0.0
    final_loss: float = field(default=float("nan"))


class LearnedCardinalityEstimator(UpdateNotifier):
    """DeepSets-backed cardinality estimator with optional hybrid auxiliary.

    Build with :meth:`build` (from a collection) or :meth:`from_training_data`
    (from pre-enumerated subset/cardinality pairs).  Query with
    :meth:`estimate` / :meth:`estimate_many`.
    """

    def __init__(self, model, scaler: LogMinMaxScaler):
        self.model = model
        self.scaler = scaler
        self.auxiliary: dict[tuple[int, ...], int] = {}
        self.report = _BuildReport()
        self.infer_plan = None

    # -- compiled inference ----------------------------------------------------

    def attach_plan(self, plan) -> None:
        """Serve model predictions through a frozen plan (None detaches).

        Routing is transparent: a stale or absent plan falls back to the
        autograd ``model.predict`` path, and query-shape errors (empty
        sets, out-of-vocabulary ids) are raised identically by both paths.
        """
        self.infer_plan = plan

    def detach_plan(self) -> None:
        """Drop the attached plan; queries return to the autograd path."""
        self.infer_plan = None

    def _predict_scaled(self, sets) -> np.ndarray:
        plan = self.infer_plan
        if plan is not None:
            scaled = plan.predict_scaled(self.model, sets)
            if scaled is not None:
                return scaled
        return self.model.predict(sets)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: SetCollection,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        removal: OutlierRemovalConfig | None = None,
        max_subset_size: int | None = 6,
        max_training_samples: int | None = None,
        rng: np.random.Generator | None = None,
        training_pairs: tuple[Sequence[tuple[int, ...]], np.ndarray] | None = None,
        sample_weights: np.ndarray | None = None,
    ) -> "LearnedCardinalityEstimator":
        """Enumerate subsets of ``collection`` and train the estimator.

        ``max_subset_size`` defaults to the paper's cap of 6 (§7.1.1);
        ``removal=None`` trains without the hybrid auxiliary.
        ``training_pairs`` lets callers reuse an already-enumerated
        ``(subsets, cardinalities)`` corpus (the benchmark suite trains
        several variants over identical data).  ``sample_weights`` (aligned
        with ``training_pairs``) weight the training loss per sample — the
        workload-adaptive refresh path's frequency weighting.
        """
        rng = rng or np.random.default_rng(
            train_config.seed if train_config else None
        )
        if training_pairs is not None:
            subsets, cardinalities = training_pairs
        else:
            subsets, cardinalities = cardinality_training_pairs(
                collection,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
        index = InvertedIndex(collection)
        scaler = LogMinMaxScaler.for_cardinality(index.max_element_cardinality())
        return cls.from_training_data(
            subsets,
            cardinalities,
            max_element_id=collection.max_element_id(),
            scaler=scaler,
            model_config=model_config,
            train_config=train_config,
            removal=removal,
            rng=rng,
            sample_weights=sample_weights,
        )

    @classmethod
    def from_training_data(
        cls,
        subsets: Sequence[tuple[int, ...]],
        cardinalities: np.ndarray,
        max_element_id: int,
        scaler: LogMinMaxScaler | None = None,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        removal: OutlierRemovalConfig | None = None,
        rng: np.random.Generator | None = None,
        sample_weights: np.ndarray | None = None,
    ) -> "LearnedCardinalityEstimator":
        model_config = model_config or ModelConfig()
        train_config = train_config or TrainConfig()
        cardinalities = np.asarray(cardinalities, dtype=np.float64)
        if scaler is None:
            scaler = LogMinMaxScaler().fit(cardinalities)
        model = model_config.build(max_element_id)
        estimator = cls(model, scaler)
        ragged = RaggedArray(subsets)
        result = guided_fit(
            model,
            ragged,
            cardinalities,
            scaler,
            train_config,
            removal=removal,
            rng=rng,
            sample_weights=sample_weights,
        )
        for position in result.outlier_indices:
            estimator.auxiliary[tuple(subsets[position])] = int(
                cardinalities[position]
            )
        estimator.report = _BuildReport(
            num_training_subsets=len(subsets),
            num_outliers=result.num_outliers,
            seconds_per_epoch=result.history.seconds_per_epoch,
            total_seconds=result.history.total_seconds,
            final_loss=result.history.final_loss,
        )
        return estimator

    # -- queries --------------------------------------------------------------

    @property
    def is_hybrid(self) -> bool:
        return bool(self.auxiliary)

    def max_known_id(self) -> int:
        """Largest element id the model can embed (the trained universe)."""
        if hasattr(self.model, "vocab_size"):
            return self.model.vocab_size - 1
        return self.model.compressor.max_value

    def estimate(self, query: Iterable[int]) -> float:
        """Estimated number of stored sets containing ``query``.

        Hybrid path: exact auxiliary lookup first, model otherwise.
        Estimates are floored at 1 — a query over known elements occurs at
        least somewhere or the floor is the best minimal guess, matching
        how q-error is scored.
        """
        canonical = tuple(sorted(set(query)))
        exact = self.auxiliary.get(canonical)
        if exact is not None:
            return float(exact)
        scaled = corrupt_prediction(float(self._predict_scaled([canonical])[0]))
        return float(max(self.scaler.inverse(np.asarray([scaled]))[0], 1.0))

    def estimate_many(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized estimates (auxiliary hits filled in exactly).

        Duplicate queries within one batch are collapsed to their unique
        canonical forms before the model call and the shared prediction is
        scattered back, so a batch of a thousand copies of one hot query
        costs one forward row, not a thousand.
        """
        canonicals = [tuple(sorted(set(q))) for q in queries]
        out = np.empty(len(canonicals), dtype=np.float64)
        unique_sets: list[tuple[int, ...]] = []
        unique_slot: dict[tuple[int, ...], int] = {}
        model_rows: list[int] = []
        model_slots: list[int] = []
        for row, canonical in enumerate(canonicals):
            exact = self.auxiliary.get(canonical)
            if exact is not None:
                out[row] = float(exact)
                continue
            slot = unique_slot.get(canonical)
            if slot is None:
                slot = unique_slot[canonical] = len(unique_sets)
                unique_sets.append(canonical)
            model_rows.append(row)
            model_slots.append(slot)
        if unique_sets:
            scaled = corrupt_predictions(self._predict_scaled(unique_sets))
            values = np.maximum(self.scaler.inverse(scaled), 1.0)
            out[model_rows] = values[model_slots]
        return out

    # -- updates (paper §7.2) ----------------------------------------------------

    def record_update(self, subset, cardinality: int) -> None:
        """Record a post-training cardinality change for ``subset``.

        The paper handles incremental updates through the auxiliary
        structure: the exact value is stored there and consulted before the
        model, deferring retraining.  After many updates the structure
        degenerates towards the exact HashMap — monitor with
        :meth:`should_retrain` and rebuild when accuracy deteriorates.
        """
        if cardinality < 0:
            raise ValueError("cardinality cannot be negative")
        canonical = tuple(sorted(set(subset)))
        self.auxiliary[canonical] = int(cardinality)
        self._notify_update(canonical)

    def should_retrain(
        self, queries, truths, max_mean_q_error: float = 4.0
    ) -> bool:
        """Accuracy-deterioration check (§7.2's retraining trigger).

        Measures the mean q-error over a probe workload; exceeding
        ``max_mean_q_error`` signals that the data distribution drifted
        enough to rebuild the model.
        """
        from .qerror import mean_q_error

        estimates = self.estimate_many(list(queries))
        return mean_q_error(estimates, np.asarray(truths)) > max_mean_q_error

    # -- accounting ------------------------------------------------------------

    def model_bytes(self) -> int:
        """Float32 weight footprint (the LSM/CLSM columns of Table 3)."""
        return state_dict_bytes(self.model)

    def auxiliary_bytes(self) -> int:
        """Pickled size of the outlier map (0 when not hybrid)."""
        return pickled_size_bytes(self.auxiliary) if self.auxiliary else 0

    def total_bytes(self) -> int:
        """Model + auxiliary footprint (the hybrid columns of Table 3)."""
        return self.model_bytes() + self.auxiliary_bytes()
