"""Compressed DeepSets (paper Figure 4) — the CLSM family.

Every element id is split into ``ns`` sub-elements (Algorithm 1); each
sub-element position has its own small embedding table.  The per-element
sub-embeddings are **concatenated and fused by the ``phi`` network before
pooling** — the step Section 5 proves necessary: pooling the sub-embeddings
independently makes the representation ambiguous between swapped
quotient/remainder pairings (the X-vs-Z counterexample), silently merging
distinct sets.  ``fuse_subelements=False`` reproduces that broken variant
for the ablation bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn import functional as F
from ..nn.data import SetBatch
from ..nn.layers import MLP, Embedding
from ..nn.module import ModuleList
from ..nn.tensor import Tensor
from .compression import ElementCompressor
from .deepsets import POOLINGS, SetModel, _pool

__all__ = ["CompressedDeepSetsModel"]


class CompressedDeepSetsModel(SetModel):
    """Compressed learned set model (CLSM).

    Parameters
    ----------
    compressor:
        The :class:`ElementCompressor` defining ``ns`` and ``sv_d``; its
        ``vocab_sizes()`` size the per-position embedding tables.
    embedding_dim:
        Width of each sub-element embedding (they are concatenated, so the
        ``phi`` input width is ``ns * embedding_dim``).
    phi_hidden:
        Hidden widths of the fusion network.  Must be non-empty when
        ``fuse_subelements`` is true — fusing is the point.
    fuse_subelements:
        When false, skips ``phi`` entirely (the paper's counterexample
        configuration, kept for the ablation study).
    """

    def __init__(
        self,
        compressor: ElementCompressor,
        embedding_dim: int = 8,
        phi_hidden: Sequence[int] = (32,),
        rho_hidden: Sequence[int] = (32,),
        pooling: str = "sum",
        out_activation: str = "sigmoid",
        fuse_subelements: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if pooling not in POOLINGS:
            raise ValueError(f"unknown pooling {pooling!r}; choose from {POOLINGS}")
        if fuse_subelements and not phi_hidden:
            raise ValueError(
                "phi_hidden must be non-empty: the fusion network is what "
                "preserves the quotient/remainder interconnection (Section 5)"
            )
        rng = rng or np.random.default_rng()
        self.compressor = compressor
        self.embedding_dim = embedding_dim
        self.pooling = pooling
        self.fuse_subelements = fuse_subelements
        self.embeddings = ModuleList(
            Embedding(vocab, embedding_dim, rng=rng)
            for vocab in compressor.vocab_sizes()
        )
        concat_dim = compressor.ns * embedding_dim
        if fuse_subelements:
            self.phi = MLP(
                concat_dim,
                list(phi_hidden[:-1]),
                phi_hidden[-1],
                activation="relu",
                out_activation="relu",
                rng=rng,
            )
            pooled_dim = phi_hidden[-1]
        else:
            self.phi = None
            pooled_dim = concat_dim
        self.rho = MLP(
            pooled_dim,
            list(rho_hidden),
            1,
            activation="relu",
            out_activation=out_activation,
            rng=rng,
        )

    def forward(self, batch: SetBatch) -> Tensor:
        sub_elements = self.compressor.compress_array(batch.elements)
        embedded = [
            embedding(sub_elements[position])
            for position, embedding in enumerate(self.embeddings)
        ]
        concatenated = F.concat(embedded, axis=1)
        if self.phi is not None:
            concatenated = self.phi(concatenated)
        pooled = _pool(
            self.pooling, concatenated, batch.segment_ids, batch.num_sets
        )
        return self.rho(pooled)

    def embedding_parameters(self) -> int:
        """Total sub-embedding weights — compare with the LSM equivalent."""
        return sum(e.weight.data.size for e in self.embeddings)
