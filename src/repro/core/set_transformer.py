"""Set Transformer model (Lee et al. 2019) as a drop-in set model.

The paper weighs the Set Transformer against DeepSets and picks DeepSets
for speed and size (§2, §3.2: "for simpler tasks they perform similarly
[but] the DeepSets model is superiorly faster and smaller").  This model
implements the alternative so the trade-off is measurable — see the
``test_ablation_architecture`` bench.

Architecture: shared element embedding -> ``num_blocks`` SAB (or ISAB)
encoder blocks -> PMA(1) pooling -> feed-forward head with a sigmoid (or
identity) output, consuming the same ragged :class:`SetBatch` as the
DeepSets models (padding + key masks are internal).
"""

from __future__ import annotations

import numpy as np

from ..nn.attention import ISAB, PMA, SAB
from ..nn.layers import MLP, Embedding
from ..nn.module import ModuleList
from ..nn.data import SetBatch
from ..nn.tensor import Tensor
from .deepsets import SetModel

__all__ = ["SetTransformerModel"]


class SetTransformerModel(SetModel):
    """Attention-based permutation-invariant set model.

    Parameters
    ----------
    vocab_size:
        Number of distinct element ids.
    dim:
        Model width (embedding and attention dimension); must be divisible
        by ``num_heads``.
    num_blocks:
        Number of encoder self-attention blocks.
    num_inducing:
        When positive, use ISAB blocks with that many inducing points
        (linear cost); 0 selects plain SAB blocks.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int = 32,
        num_heads: int = 4,
        num_blocks: int = 2,
        num_inducing: int = 0,
        out_activation: str = "sigmoid",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.embedding = Embedding(vocab_size, dim, rng=rng)
        if num_inducing > 0:
            blocks = [
                ISAB(dim, num_inducing=num_inducing, num_heads=num_heads, rng=rng)
                for _ in range(num_blocks)
            ]
        else:
            blocks = [SAB(dim, num_heads=num_heads, rng=rng) for _ in range(num_blocks)]
        self.encoder = ModuleList(blocks)
        self.pool = PMA(dim, num_seeds=1, num_heads=num_heads, rng=rng)
        self.head = MLP(
            dim, [dim], 1, activation="relu", out_activation=out_activation, rng=rng
        )

    @staticmethod
    def _pad(batch: SetBatch) -> tuple[np.ndarray, np.ndarray]:
        """Flattened ragged batch -> (padded ids, key mask)."""
        sizes = batch.set_sizes()
        max_len = int(sizes.max()) if len(sizes) else 1
        padded = np.zeros((batch.num_sets, max_len), dtype=np.int64)
        mask = np.zeros((batch.num_sets, max_len), dtype=np.float64)
        cursor = 0
        for row, size in enumerate(sizes):
            padded[row, :size] = batch.elements[cursor : cursor + size]
            mask[row, :size] = 1.0
            cursor += size
        return padded, mask

    def forward(self, batch: SetBatch) -> Tensor:
        padded, mask = self._pad(batch)
        x = self.embedding(padded.ravel()).reshape(
            batch.num_sets, padded.shape[1], self.dim
        )
        for block in self.encoder:
            x = block(x, key_mask=mask)
        pooled = self.pool(x, key_mask=mask)  # (B, 1, D)
        return self.head(pooled.reshape(batch.num_sets, self.dim))

    def embedding_parameters(self) -> int:
        """Embedding-table weight count (for size comparisons)."""
        return self.embedding.weight.data.size
