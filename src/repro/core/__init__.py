"""The paper's contribution: learned set structures and their machinery."""

from .cardinality import LearnedCardinalityEstimator
from .clsm import CompressedDeepSetsModel
from .compression import (
    ElementCompressor,
    compress_element,
    compressed_input_dims,
    decompress_element,
    embedding_matrix_bytes,
    embedding_matrix_entries,
    optimal_divisor,
)
from .config import ModelConfig
from .deepsets import DeepSetsModel, SetModel
from .hooks import UpdateNotifier
from .hybrid import (
    GuidedFitResult,
    LocalErrorBounds,
    OutlierRemovalConfig,
    guided_fit,
)
from .index import LearnedSetIndex, LookupStats
from .filters_ext import PartitionedLearnedBloomFilter, SandwichedLearnedBloomFilter
from .membership import LearnedBloomFilter
from .multi import MultiSetMembership
from .predicate_suite import PredicateCardinalitySuite
from .qerror import (
    absolute_error,
    binary_accuracy,
    group_q_error_by_result_size,
    mean_absolute_error,
    mean_q_error,
    q_error,
    q_error_percentile,
)
from .scaling import LogMinMaxScaler
from .set_transformer import SetTransformerModel
from .training import TrainConfig, Trainer, TrainingHistory

__all__ = [
    "LearnedCardinalityEstimator",
    "LearnedSetIndex",
    "LearnedBloomFilter",
    "SandwichedLearnedBloomFilter",
    "PartitionedLearnedBloomFilter",
    "MultiSetMembership",
    "PredicateCardinalitySuite",
    "UpdateNotifier",
    "LookupStats",
    "DeepSetsModel",
    "CompressedDeepSetsModel",
    "SetTransformerModel",
    "SetModel",
    "ModelConfig",
    "ElementCompressor",
    "optimal_divisor",
    "compress_element",
    "decompress_element",
    "compressed_input_dims",
    "embedding_matrix_entries",
    "embedding_matrix_bytes",
    "LogMinMaxScaler",
    "TrainConfig",
    "Trainer",
    "TrainingHistory",
    "OutlierRemovalConfig",
    "GuidedFitResult",
    "guided_fit",
    "LocalErrorBounds",
    "q_error",
    "mean_q_error",
    "q_error_percentile",
    "absolute_error",
    "mean_absolute_error",
    "binary_accuracy",
    "group_q_error_by_result_size",
]
