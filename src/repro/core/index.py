"""Learned set index (paper §4.1 and §6, evaluated in §8.3).

Maps a query subset to the *first* position in the (unordered!) collection
whose set contains it.  Because no sort order exists, a plain regression
model produces large errors; the production configuration is the hybrid:

1. guided training evicts hard subsets into an exact auxiliary map;
2. per-range **local error bounds** (Algorithm 2) confine the sequential
   search around the predicted position;
3. the search scans ``[est - e_r, est + e_r]`` left to right and returns
   the first set containing the query.

For subsets seen during training this is exact: either the auxiliary holds
them, or their true position is within the recorded bound of their
prediction by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..nn.data import RaggedArray
from ..nn.serialize import pickled_size_bytes, state_dict_bytes
from ..reliability.faults import corrupt_prediction, corrupt_predictions
from ..sets.collection import SetCollection
from ..sets.subsets import index_training_pairs
from .config import ModelConfig
from .hooks import UpdateNotifier
from .hybrid import LocalErrorBounds, OutlierRemovalConfig, guided_fit
from .scaling import LogMinMaxScaler
from .training import TrainConfig

__all__ = ["LearnedSetIndex", "LookupStats"]


@dataclass
class LookupStats:
    """Aggregate search-cost telemetry (Table 8's local-vs-global story)."""

    lookups: int = 0
    auxiliary_hits: int = 0
    sets_scanned: int = 0
    not_found: int = 0

    @property
    def mean_scan_length(self) -> float:
        model_lookups = self.lookups - self.auxiliary_hits
        return self.sets_scanned / model_lookups if model_lookups else 0.0


@dataclass
class _BuildReport:
    num_training_subsets: int = 0
    num_outliers: int = 0
    seconds_per_epoch: float = 0.0
    total_seconds: float = 0.0
    final_loss: float = field(default=float("nan"))


class LearnedSetIndex(UpdateNotifier):
    """Hybrid learned index over an unordered collection of sets."""

    def __init__(
        self,
        collection: SetCollection,
        model,
        scaler: LogMinMaxScaler,
        bounds: LocalErrorBounds,
        use_local_errors: bool = True,
    ):
        self.collection = collection
        self.model = model
        self.scaler = scaler
        self.bounds = bounds
        self.use_local_errors = use_local_errors
        self.auxiliary: dict[tuple[int, ...], int] = {}
        self.stats = LookupStats()
        self.report = _BuildReport()
        self.infer_plan = None

    # -- compiled inference ----------------------------------------------------

    def attach_plan(self, plan) -> None:
        """Serve position estimates through a frozen plan (None detaches)."""
        self.infer_plan = plan

    def detach_plan(self) -> None:
        """Drop the attached plan; queries return to the autograd path."""
        self.infer_plan = None

    def _predict_scaled(self, sets) -> np.ndarray:
        plan = self.infer_plan
        if plan is not None:
            scaled = plan.predict_scaled(self.model, sets)
            if scaled is not None:
                return scaled
        return self.model.predict(sets)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: SetCollection,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        removal: OutlierRemovalConfig | None = None,
        max_subset_size: int | None = 6,
        max_training_samples: int | None = None,
        error_range_length: int = 100,
        use_local_errors: bool = True,
        rng: np.random.Generator | None = None,
        training_pairs: tuple[Sequence[tuple[int, ...]], np.ndarray] | None = None,
        sample_weights: np.ndarray | None = None,
    ) -> "LearnedSetIndex":
        """Train the index over all (capped) subsets of ``collection``.

        The paper generates *all* subsets for the index task to guarantee
        every query is findable; ``max_training_samples`` exists for
        scaled-down experiments, at the cost of that guarantee for
        unsampled subsets (lookups then fall back to a full scan).
        ``training_pairs`` reuses a pre-enumerated ``(subsets, positions)``
        corpus; ``sample_weights`` (aligned with it) weight the training
        loss per sample for the workload-adaptive refresh path.
        """
        model_config = model_config or ModelConfig()
        train_config = train_config or TrainConfig()
        rng = rng or np.random.default_rng(train_config.seed)
        if training_pairs is not None:
            subsets, positions = training_pairs
        else:
            subsets, positions = index_training_pairs(
                collection,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
        scaler = LogMinMaxScaler.for_positions(len(collection))
        model = model_config.build(collection.max_element_id())
        ragged = RaggedArray(subsets)
        result = guided_fit(
            model,
            ragged,
            positions.astype(np.float64),
            scaler,
            train_config,
            removal=removal,
            rng=rng,
            sample_weights=sample_weights,
        )
        # Error bounds cover the *retained* (non-outlier) subsets: outliers
        # are answered exactly by the auxiliary map and must not inflate
        # anyone else's search window.
        retained = np.setdiff1d(
            np.arange(len(subsets)), result.outlier_indices, assume_unique=True
        )
        bounds = LocalErrorBounds(
            estimates=result.final_predictions[retained],
            truths=positions[retained].astype(np.float64),
            range_length=error_range_length,
            min_value=0.0,
            max_value=float(len(collection) - 1),
        )
        index = cls(collection, model, scaler, bounds, use_local_errors)
        for row in result.outlier_indices:
            index.auxiliary[tuple(subsets[row])] = int(positions[row])
        index.report = _BuildReport(
            num_training_subsets=len(subsets),
            num_outliers=result.num_outliers,
            seconds_per_epoch=result.history.seconds_per_epoch,
            total_seconds=result.history.total_seconds,
            final_loss=result.history.final_loss,
        )
        return index

    # -- queries --------------------------------------------------------------

    def max_known_id(self) -> int:
        """Largest element id the model can embed (the trained universe)."""
        if hasattr(self.model, "vocab_size"):
            return self.model.vocab_size - 1
        return self.model.compressor.max_value

    def predict_position(self, query: Iterable[int]) -> float:
        """Raw model estimate of the first position (no search)."""
        canonical = tuple(sorted(set(query)))
        scaled = corrupt_prediction(float(self._predict_scaled([canonical])[0]))
        return float(self.scaler.inverse(np.asarray([scaled]))[0])

    def predict_positions(self, queries: Sequence[Iterable[int]]) -> np.ndarray:
        """Vectorized raw position estimates (no search).

        Duplicate queries are collapsed to their unique canonical forms
        before the forward pass and scattered back, mirroring
        :meth:`LearnedCardinalityEstimator.estimate_many`.
        """
        canonicals = [tuple(sorted(set(q))) for q in queries]
        unique_sets: list[tuple[int, ...]] = []
        unique_slot: dict[tuple[int, ...], int] = {}
        slots = np.empty(len(canonicals), dtype=np.int64)
        for row, canonical in enumerate(canonicals):
            slot = unique_slot.get(canonical)
            if slot is None:
                slot = unique_slot[canonical] = len(unique_sets)
                unique_sets.append(canonical)
            slots[row] = slot
        if not unique_sets:
            return np.empty(0, dtype=np.float64)
        scaled = corrupt_predictions(self._predict_scaled(unique_sets))
        return self.scaler.inverse(scaled)[slots]

    def lookup(self, query: Iterable[int], fallback_scan: bool = True) -> int | None:
        """First position ``i`` with ``query ⊆ S[i]`` (Algorithm 2).

        ``fallback_scan`` controls behaviour for queries outside the
        trained/bounded universe: scan the whole collection (exact, slow)
        or return ``None``.
        """
        canonical = tuple(sorted(set(query)))
        self.stats.lookups += 1
        exact = self.auxiliary.get(canonical)
        if exact is not None:
            self.stats.auxiliary_hits += 1
            return exact
        estimate = self.predict_position(canonical)
        return self._search_from_estimate(canonical, estimate, fallback_scan)

    def lookup_with_estimate(
        self, query: Iterable[int], estimate: float, fallback_scan: bool = True
    ) -> int | None:
        """Bounded search around a pre-computed position ``estimate``.

        The batched serving path predicts positions for a whole batch in
        one forward pass (:meth:`predict_positions`) and then resolves each
        query through this method, which performs exactly the search half
        of :meth:`lookup` (auxiliary check included, telemetry counted).
        """
        canonical = tuple(sorted(set(query)))
        self.stats.lookups += 1
        exact = self.auxiliary.get(canonical)
        if exact is not None:
            self.stats.auxiliary_hits += 1
            return exact
        return self._search_from_estimate(canonical, estimate, fallback_scan)

    def lookup_many(
        self, queries: Sequence[Iterable[int]], fallback_scan: bool = True
    ) -> list[int | None]:
        """Vectorized :meth:`lookup`: one model call, per-query search.

        Agrees elementwise with ``[self.lookup(q) for q in queries]`` and
        maintains the same :class:`LookupStats` telemetry.
        """
        canonicals = [tuple(sorted(set(q))) for q in queries]
        results: list[int | None] = [None] * len(canonicals)
        model_rows: list[int] = []
        for row, canonical in enumerate(canonicals):
            self.stats.lookups += 1
            exact = self.auxiliary.get(canonical)
            if exact is not None:
                self.stats.auxiliary_hits += 1
                results[row] = exact
            else:
                model_rows.append(row)
        if model_rows:
            estimates = self.predict_positions([canonicals[r] for r in model_rows])
            for row, estimate in zip(model_rows, estimates):
                results[row] = self._search_from_estimate(
                    canonicals[row], float(estimate), fallback_scan
                )
        return results

    def _search_from_estimate(
        self, canonical: tuple[int, ...], estimate: float, fallback_scan: bool
    ) -> int | None:
        """Window scan around ``estimate`` plus the optional full rescan.

        A non-finite estimate (e.g. an injected NaN) has no meaningful
        window; it degrades to the fallback scan (or a miss), never to an
        ``IndexError``.
        """
        if np.isfinite(estimate):
            radius = (
                self.bounds.bound(estimate)
                if self.use_local_errors
                else self.bounds.global_error
            )
            low = max(int(np.floor(estimate - radius)), 0)
            high = min(int(np.ceil(estimate + radius)), len(self.collection) - 1)
            found = self._scan(canonical, low, high)
            if found is not None:
                return found
        if fallback_scan:
            found = self._scan(canonical, 0, len(self.collection) - 1)
            if found is not None:
                return found
        self.stats.not_found += 1
        return None

    def _scan(self, query: tuple[int, ...], low: int, high: int) -> int | None:
        """Left-to-right subset scan over ``collection[low..high]``."""
        q = frozenset(query)
        sets = self.collection.sets()
        for position in range(low, high + 1):
            self.stats.sets_scanned += 1
            if q.issubset(sets[position]):
                return position
        return None

    def lookup_equal(self, query: Iterable[int], fallback_scan: bool = True) -> int | None:
        """First position whose stored set *equals* ``query`` (equality mode)."""
        canonical = tuple(sorted(set(query)))
        exact = self.auxiliary.get(canonical)
        if exact is not None and self.collection[exact] == canonical:
            return exact
        estimate = self.predict_position(canonical)
        radius = (
            self.bounds.bound(estimate)
            if self.use_local_errors
            else self.bounds.global_error
        )
        low = max(int(np.floor(estimate - radius)), 0)
        high = min(int(np.ceil(estimate + radius)), len(self.collection) - 1)
        sets = self.collection.sets()
        for position in range(low, high + 1):
            if sets[position] == canonical:
                return position
        if fallback_scan:
            for position in range(len(sets)):
                if sets[position] == canonical:
                    return position
        return None

    # -- updates (paper §7.2) ---------------------------------------------------

    def insert_update(self, subset: Iterable[int], new_position: int) -> None:
        """Record a post-training position change.

        If the new position still falls inside the query-time search window
        nothing needs storing; otherwise the subset joins the auxiliary
        structure, which is consulted before the model (§7.2).  After many
        updates the structure degenerates towards a traditional index —
        callers should rebuild when ``auxiliary_fraction`` grows large.
        """
        canonical = tuple(sorted(set(subset)))
        estimate = self.predict_position(canonical)
        radius = (
            self.bounds.bound(estimate)
            if self.use_local_errors
            else self.bounds.global_error
        )
        if abs(estimate - new_position) > radius:
            self.auxiliary[canonical] = int(new_position)
        self._notify_update(canonical)

    @property
    def auxiliary_fraction(self) -> float:
        trained = max(self.report.num_training_subsets, 1)
        return len(self.auxiliary) / trained

    # -- accounting ------------------------------------------------------------

    def model_bytes(self) -> int:
        """Float32 weight footprint (the Model column of Table 7)."""
        return state_dict_bytes(self.model)

    def auxiliary_bytes(self) -> int:
        """Pickled size of the outlier map (the Aux.Str. column)."""
        return pickled_size_bytes(self.auxiliary) if self.auxiliary else 0

    def error_bytes(self) -> int:
        """Size of the local error-bound list (the Err. column)."""
        return self.bounds.size_bytes()

    def total_bytes(self) -> int:
        """Full hybrid footprint: model + auxiliary + error bounds."""
        return self.model_bytes() + self.auxiliary_bytes() + self.error_bytes()

    def reset_stats(self) -> None:
        """Clear the lookup telemetry counters."""
        self.stats = LookupStats()
