"""Multi-collection membership querying — the paper's §9 future work.

The paper closes by proposing "multi-set multi-membership querying" as an
extension.  This module provides the natural construction on top of the
existing components: one learned Bloom filter per named collection, with a
single query answered against all of them at once ("which of these tweet
archives / log shards contains this combination?").

Each filter keeps its own guarantee (no false negatives on its indexed
universe); the router adds cross-collection conveniences and aggregate
memory accounting.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..sets.collection import SetCollection
from .membership import LearnedBloomFilter

__all__ = ["MultiSetMembership"]


class MultiSetMembership:
    """Route membership queries across several learned-filter-backed shards."""

    def __init__(self):
        self._filters: dict[str, LearnedBloomFilter] = {}

    # -- registration ----------------------------------------------------------

    def add_filter(self, name: str, filter_: LearnedBloomFilter) -> None:
        """Register an already-trained filter under ``name``."""
        if name in self._filters:
            raise KeyError(f"a filter named {name!r} is already registered")
        self._filters[name] = filter_

    def add_collection(
        self, name: str, collection: SetCollection, **build_kwargs
    ) -> LearnedBloomFilter:
        """Train and register a filter for ``collection``.

        ``build_kwargs`` are forwarded to :meth:`LearnedBloomFilter.build`.
        """
        filter_ = LearnedBloomFilter.build(collection, **build_kwargs)
        self.add_filter(name, filter_)
        return filter_

    def names(self) -> list[str]:
        return sorted(self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    def __contains__(self, name: str) -> bool:
        return name in self._filters

    # -- querying ---------------------------------------------------------------

    def membership(self, query: Iterable[int]) -> dict[str, bool]:
        """Per-collection membership answers for one query set."""
        if not self._filters:
            raise RuntimeError("no collections registered")
        canonical = tuple(sorted(set(query)))
        return {
            name: filter_.contains(canonical)
            for name, filter_ in self._filters.items()
        }

    def collections_containing(self, query: Iterable[int]) -> list[str]:
        """Names of the collections reporting the query present (sorted)."""
        return sorted(
            name for name, present in self.membership(query).items() if present
        )

    def contains_any(self, query: Iterable[int]) -> bool:
        return any(self.membership(query).values())

    def contains_all(self, query: Iterable[int]) -> bool:
        return all(self.membership(query).values())

    def membership_many(
        self, queries: Sequence[Iterable[int]]
    ) -> dict[str, np.ndarray]:
        """Vectorized per-collection answers for a batch of queries."""
        if not self._filters:
            raise RuntimeError("no collections registered")
        canonicals = [tuple(sorted(set(q))) for q in queries]
        return {
            name: filter_.contains_many(canonicals)
            for name, filter_ in self._filters.items()
        }

    # -- accounting ---------------------------------------------------------------

    def total_bytes(self) -> int:
        """Combined footprint of all registered filters."""
        return sum(f.total_bytes() for f in self._filters.values())
