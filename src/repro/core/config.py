"""Model configuration shared by the three database tasks.

One dataclass covers the paper's sweep space (Table 1 + §8.1): model kind
(LSM vs CLSM), embedding size 2–32, 1–2 layers of 8–256 neurons, pooling,
and — for CLSM — the compression parameters ``ns`` and ``sv_d``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .clsm import CompressedDeepSetsModel
from .compression import ElementCompressor
from .deepsets import DeepSetsModel, SetModel

__all__ = ["ModelConfig"]


@dataclass
class ModelConfig:
    """Architecture choices for one learned set model.

    ``kind`` is ``"lsm"`` (shared full-vocabulary embedding) or ``"clsm"``
    (compressed sub-element embeddings).  ``divisor=None`` uses the optimal
    (most compressing) ``sv_d``; Table 6 tunes it upward for accuracy.
    """

    kind: str = "clsm"
    embedding_dim: int = 8
    phi_hidden: tuple[int, ...] = (32,)
    rho_hidden: tuple[int, ...] = (32,)
    pooling: str = "sum"
    ns: int = 2
    divisor: int | None = None
    seed: int | None = None

    def __post_init__(self):
        if self.kind not in ("lsm", "clsm"):
            raise ValueError("kind must be 'lsm' or 'clsm'")

    def build(self, max_element_id: int) -> SetModel:
        """Instantiate the model for a universe of ids ``0..max_element_id``."""
        rng = np.random.default_rng(self.seed)
        if self.kind == "lsm":
            return DeepSetsModel(
                vocab_size=max_element_id + 1,
                embedding_dim=self.embedding_dim,
                phi_hidden=self.phi_hidden,
                rho_hidden=self.rho_hidden,
                pooling=self.pooling,
                out_activation="sigmoid",
                rng=rng,
            )
        compressor = ElementCompressor(max_element_id, ns=self.ns, divisor=self.divisor)
        return CompressedDeepSetsModel(
            compressor,
            embedding_dim=self.embedding_dim,
            phi_hidden=self.phi_hidden,
            rho_hidden=self.rho_hidden,
            pooling=self.pooling,
            out_activation="sigmoid",
            rng=rng,
        )
