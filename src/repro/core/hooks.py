"""Update-notification hooks for the learned structures.

The serving layer (:mod:`repro.serve`) caches query results keyed on the
canonical subset, so every post-training mutation — a recorded cardinality
change, an index position change, a Bloom insert — must invalidate the
affected cache entries.  Rather than coupling :mod:`repro.core` to the
server, each structure mixes in :class:`UpdateNotifier` and calls
:meth:`_notify_update` from its mutation methods; interested parties
(caches, replicas, metrics) register plain callables.

Listeners are deliberately excluded from pickling: a serialized structure
must not drag a live server (sockets, threads, locks) into the pickle.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["UpdateNotifier"]

UpdateListener = Callable[[tuple[int, ...]], None]


class UpdateNotifier:
    """Mixin: register callables fired on every post-training mutation.

    The listener receives the *canonical* (sorted, de-duplicated) subset
    that changed.  Listener exceptions propagate to the mutator — a cache
    that cannot invalidate must not be silently left stale.
    """

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register ``listener(canonical)`` to fire on every mutation."""
        if not callable(listener):
            raise TypeError("update listener must be callable")
        self.__dict__.setdefault("_update_listeners", []).append(listener)

    def remove_update_listener(self, listener: UpdateListener) -> None:
        """Detach a listener; raises ``ValueError`` if it is not attached."""
        listeners = self.__dict__.get("_update_listeners", [])
        listeners.remove(listener)

    def _notify_update(self, canonical: tuple[int, ...]) -> None:
        for listener in self.__dict__.get("_update_listeners", ()):
            listener(canonical)

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_update_listeners", None)
        return state
