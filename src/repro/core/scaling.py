"""Target scaling for the regression tasks (paper §4.1/§4.2).

Positions and cardinalities are log-transformed and min-max scaled into
``[0, 1]`` so a sigmoid output head fits them.  ``log1p`` is used (positions
start at 0); the inverse transform rounds back through ``expm1``.

For cardinality estimation the paper points out the scaler's upper bound is
known *a priori*: a subset's cardinality never exceeds the largest
single-element cardinality, so :meth:`LogMinMaxScaler.for_cardinality`
builds the scaler straight from that bound.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogMinMaxScaler"]


class LogMinMaxScaler:
    """``y -> (log1p(y) - lo) / (hi - lo)``, clamped to [0, 1] on inverse."""

    def __init__(self):
        self.lo: float | None = None
        self.hi: float | None = None

    # -- construction --------------------------------------------------------

    def fit(self, values) -> "LogMinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        if values.min() < 0:
            raise ValueError("targets must be non-negative")
        logs = np.log1p(values)
        self.lo = float(logs.min())
        self.hi = float(logs.max())
        return self

    @classmethod
    def from_bounds(cls, min_value: float, max_value: float) -> "LogMinMaxScaler":
        """Build from known target bounds (no data pass needed)."""
        if min_value < 0 or max_value < min_value:
            raise ValueError("need 0 <= min_value <= max_value")
        scaler = cls()
        scaler.lo = float(np.log1p(min_value))
        scaler.hi = float(np.log1p(max_value))
        return scaler

    @classmethod
    def for_cardinality(cls, max_element_cardinality: int) -> "LogMinMaxScaler":
        """Scaler for the cardinality task: range [1, max element card]."""
        return cls.from_bounds(1.0, float(max_element_cardinality))

    @classmethod
    def for_positions(cls, num_sets: int) -> "LogMinMaxScaler":
        """Scaler for the index task: positions in [0, num_sets - 1]."""
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        return cls.from_bounds(0.0, float(num_sets - 1))

    # -- transforms ----------------------------------------------------------

    @property
    def span(self) -> float:
        """``hi - lo`` in log space (the q-error/MAE conversion constant)."""
        self._require_fitted()
        return self.hi - self.lo

    def transform(self, values) -> np.ndarray:
        self._require_fitted()
        logs = np.log1p(np.asarray(values, dtype=np.float64))
        if self.hi == self.lo:
            return np.zeros_like(logs)
        return (logs - self.lo) / (self.hi - self.lo)

    def inverse(self, scaled) -> np.ndarray:
        """Map model outputs back to the original target space (>= 0)."""
        self._require_fitted()
        scaled = np.clip(np.asarray(scaled, dtype=np.float64), 0.0, 1.0)
        logs = scaled * (self.hi - self.lo) + self.lo
        return np.maximum(np.expm1(logs), 0.0)

    def _require_fitted(self) -> None:
        if self.lo is None or self.hi is None:
            raise RuntimeError("scaler is not fitted")
