"""Predicate-conditioned cardinality estimation (the query-family tentpole).

The paper's estimator answers one predicate — subset containment.  ACE
(PAPERS.md) generalizes set-valued cardinality estimation to a predicate
family; this module is the learned side of that generalization here: a
:class:`PredicateCardinalitySuite` trains **one DeepSets estimator per
predicate** over the same collection, because the count surfaces differ
structurally (subset counts are monotone decreasing in the query, superset
counts increase with it, overlap/Jaccard thresholds carve level sets) and
a single regressor conditioned on a predicate id underperforms four small
specialists at this scale.

Each member estimator is a plain :class:`LearnedCardinalityEstimator` —
auxiliary overrides, guided outlier eviction, compiled-inference plans and
byte accounting all keep working per predicate.  The suite adds routing:

* ``estimate`` / ``estimate_many`` take a ``predicate`` argument;
* ``estimate_many_keyed`` answers a *mixed* batch of ``(spec, query)``
  pairs in one pass per distinct predicate — the entry point the serving
  micro-batcher uses, since one flush may interleave predicates.

Training corpora come from :func:`repro.sets.subsets.predicate_training_pairs`
(enumeration for subset, labelled perturbed stored sets for the rest), and
labels are scaled per predicate: the subset scaler keeps the paper's
a-priori bound (max single-element cardinality); the other predicates have
no such bound below ``num_sets``, so their scalers fit the corpus.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..sets.collection import SetCollection
from ..sets.inverted import InvertedIndex
from ..sets.predicates import DEFAULT_PREDICATES, Predicate, as_predicate
from ..sets.subsets import predicate_training_pairs
from .cardinality import LearnedCardinalityEstimator
from .config import ModelConfig
from .hooks import UpdateNotifier
from .hybrid import OutlierRemovalConfig
from .scaling import LogMinMaxScaler
from .training import TrainConfig

__all__ = ["PredicateCardinalitySuite"]


class PredicateCardinalitySuite(UpdateNotifier):
    """One learned cardinality estimator per predicate, behind one router."""

    supports_predicates = True

    def __init__(self, estimators: Mapping[str, LearnedCardinalityEstimator]):
        super().__init__()
        if not estimators:
            raise ValueError("suite needs at least one estimator")
        # Keyed by canonical predicate spec; parse() validates each key.
        self._estimators = {
            as_predicate(spec).spec: estimator
            for spec, estimator in estimators.items()
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: SetCollection,
        predicates: Sequence[Predicate | str] = DEFAULT_PREDICATES,
        model_config: ModelConfig | None = None,
        train_config: TrainConfig | None = None,
        removal: OutlierRemovalConfig | None = None,
        num_samples: int = 2000,
        max_subset_size: int | None = 6,
        max_extra_elements: int = 3,
        rng: np.random.Generator | None = None,
        index: InvertedIndex | None = None,
    ) -> "PredicateCardinalitySuite":
        """Train one estimator per predicate over ``collection``.

        The exact :class:`InvertedIndex` (built once, shareable via
        ``index``) labels every non-subset corpus; the subset member goes
        through :meth:`LearnedCardinalityEstimator.build` so it stays
        byte-identical to the unsharded paper estimator.
        """
        rng = rng or np.random.default_rng(
            train_config.seed if train_config else None
        )
        index = index if index is not None else InvertedIndex(collection)
        max_element_id = collection.max_element_id()
        estimators: dict[str, LearnedCardinalityEstimator] = {}
        for predicate in predicates:
            predicate = as_predicate(predicate)
            if predicate.kind == "subset":
                estimators[predicate.spec] = LearnedCardinalityEstimator.build(
                    collection,
                    model_config=model_config,
                    train_config=train_config,
                    removal=removal,
                    max_subset_size=max_subset_size,
                    max_training_samples=num_samples,
                    rng=rng,
                )
                continue
            queries, counts = predicate_training_pairs(
                collection,
                predicate,
                index=index,
                num_samples=num_samples,
                max_subset_size=max_subset_size,
                max_extra_elements=max_extra_elements,
                rng=rng,
            )
            # Counts range over [0, num_sets] with no tighter a-priori
            # bound, so the scaler spans that full range (log1p admits 0).
            scaler = LogMinMaxScaler.from_bounds(0.0, float(index.num_sets))
            estimators[predicate.spec] = LearnedCardinalityEstimator.from_training_data(
                queries,
                counts,
                max_element_id=max_element_id,
                scaler=scaler,
                model_config=model_config,
                train_config=train_config,
                removal=removal,
                rng=rng,
            )
        return cls(estimators)

    # -- routing --------------------------------------------------------------

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """The trained predicate family, in registration order."""
        return tuple(Predicate.parse(spec) for spec in self._estimators)

    def estimator_for(self, predicate) -> LearnedCardinalityEstimator:
        predicate = as_predicate(predicate)
        try:
            return self._estimators[predicate.spec]
        except KeyError:
            raise KeyError(
                f"no estimator trained for predicate {predicate.spec!r}; "
                f"trained: {sorted(self._estimators)}"
            ) from None

    def max_known_id(self) -> int:
        """Shared trained universe (every member embeds the same ids)."""
        return min(e.max_known_id() for e in self._estimators.values())

    # -- queries --------------------------------------------------------------

    def estimate(self, query: Iterable[int], predicate=None) -> float:
        return self.estimator_for(predicate).estimate(query)

    def estimate_many(
        self, queries: Sequence[Iterable[int]], predicate=None
    ) -> np.ndarray:
        return self.estimator_for(predicate).estimate_many(queries)

    def estimate_many_keyed(
        self, items: Sequence[tuple[str, tuple[int, ...]]]
    ) -> np.ndarray:
        """Answer a mixed batch of ``(predicate_spec, query)`` pairs.

        Rows are grouped by predicate so each member estimator gets one
        vectorized call (keeping its own dedupe effective), then scattered
        back into submission order.
        """
        out = np.empty(len(items), dtype=np.float64)
        groups: dict[str, tuple[list[int], list[tuple[int, ...]]]] = {}
        for row, (spec, query) in enumerate(items):
            spec = as_predicate(spec).spec
            rows, queries = groups.setdefault(spec, ([], []))
            rows.append(row)
            queries.append(query)
        for spec, (rows, queries) in groups.items():
            out[rows] = np.asarray(
                self.estimator_for(spec).estimate_many(queries), dtype=np.float64
            )
        return out

    # -- updates --------------------------------------------------------------

    def record_update(self, subset, cardinality: int, predicate=None) -> None:
        """Exact post-training override for one ``(predicate, query)``.

        Lands in the member estimator's auxiliary map and re-fires the
        suite-level hooks so serving caches invalidate regardless of which
        member changed.
        """
        predicate = as_predicate(predicate)
        self.estimator_for(predicate).record_update(subset, cardinality)
        self._notify_update(tuple(sorted(set(subset))))

    # -- accounting ------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(e.total_bytes() for e in self._estimators.values())
