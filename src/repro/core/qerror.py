"""Accuracy metrics used throughout the paper's evaluation.

The central one is the **q-error** ``max(est/true, true/est)`` — a
multiplicative, symmetric error whose optimum is 1.  Estimates and truths
are floored at 1 (the usual convention for cardinalities/positions, which
avoids division by zero and matches how the paper scores results).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "q_error",
    "mean_q_error",
    "q_error_percentile",
    "absolute_error",
    "mean_absolute_error",
    "binary_accuracy",
    "group_q_error_by_result_size",
]


def q_error(estimate, truth) -> np.ndarray:
    """Elementwise q-error with both sides floored at 1."""
    est = np.maximum(np.asarray(estimate, dtype=np.float64), 1.0)
    true = np.maximum(np.asarray(truth, dtype=np.float64), 1.0)
    return np.maximum(est / true, true / est)


def mean_q_error(estimate, truth) -> float:
    """Average q-error across the workload."""
    return float(q_error(estimate, truth).mean())


def q_error_percentile(estimate, truth, percentile: float) -> float:
    """The given percentile of the q-error distribution."""
    return float(np.percentile(q_error(estimate, truth), percentile))


def absolute_error(estimate, truth) -> np.ndarray:
    """Elementwise absolute error (the index task's second metric)."""
    return np.abs(
        np.asarray(estimate, dtype=np.float64) - np.asarray(truth, dtype=np.float64)
    )


def mean_absolute_error(estimate, truth) -> float:
    """Average absolute error across the workload."""
    return float(absolute_error(estimate, truth).mean())


def binary_accuracy(probabilities, labels, threshold: float = 0.5) -> float:
    """Fraction of correct thresholded predictions (Bloom filter task)."""
    predictions = np.asarray(probabilities, dtype=np.float64) >= threshold
    return float((predictions == np.asarray(labels, dtype=bool)).mean())


def group_q_error_by_result_size(
    estimate,
    truth,
    bin_edges: list[int] | None = None,
) -> dict[str, float]:
    """Average q-error bucketed by the true result size (Figure 6's x-axis).

    ``bin_edges`` are the inclusive lower bounds of each bucket; the default
    mirrors the paper's result-size ranges.
    """
    edges = bin_edges or [1, 2, 5, 10, 50, 100, 1000]
    est = np.asarray(estimate, dtype=np.float64)
    true = np.asarray(truth, dtype=np.float64)
    errors = q_error(est, true)
    grouped: dict[str, float] = {}
    for low, high in zip(edges, edges[1:] + [None]):
        if high is None:
            mask = true >= low
            label = f">={low}"
        else:
            mask = (true >= low) & (true < high)
            label = f"[{low},{high})"
        if mask.any():
            grouped[label] = float(errors[mask].mean())
    return grouped
