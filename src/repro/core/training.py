"""Training loop for set models.

A thin, explicit loop: mini-batches from a :class:`SetDataLoader`, a loss
from :mod:`repro.nn.losses`, Adam by default.  The ``epoch_end`` callback is
the hook the guided (outlier-removing) training of Section 6 plugs into.

The loop is divergence-safe: a non-finite batch loss (numeric blow-up, or
one injected by :mod:`repro.reliability.faults`) triggers a rollback to the
best weights seen so far plus a learning-rate backoff, retrying the epoch a
bounded number of times before raising :class:`TrainingDivergedError`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn.data import SetDataLoader
from ..nn.losses import resolve_loss
from ..nn.optim import SGD, Adam, RMSprop
from ..obs.profiler import TrainingProfiler, get_profiler
from ..reliability.faults import corrupt_loss
from .deepsets import SetModel

__all__ = [
    "TrainConfig",
    "TrainingHistory",
    "Trainer",
    "TrainingDivergedError",
]

_OPTIMIZERS = {"adam": Adam, "sgd": SGD, "rmsprop": RMSprop}


class TrainingDivergedError(RuntimeError):
    """Training kept producing non-finite losses after every retry."""


@dataclass
class TrainConfig:
    """Hyperparameters for one training run.

    ``loss`` names a function from :mod:`repro.nn.losses`; the paper uses
    ``q_error`` (the MAE-on-scaled surrogate) for regression and ``bce``
    for the Bloom-filter task.
    """

    epochs: int = 50
    batch_size: int = 512
    lr: float = 1e-3
    loss: str = "q_error"
    optimizer: str = "adam"
    seed: int | None = None
    verbose: bool = False
    # Stop when the epoch loss has not improved by at least ``min_delta``
    # for ``patience`` consecutive epochs (None disables early stopping).
    patience: int | None = None
    min_delta: float = 1e-5
    # Clip the global gradient norm before each step (None disables).
    grad_clip_norm: float | None = None
    # Divergence recovery: on a non-finite batch loss, restore the best
    # weights seen so far, multiply the learning rate by ``lr_backoff``,
    # and retry the epoch — at most ``max_divergence_retries`` times over
    # the whole run (0 surfaces the divergence immediately).
    max_divergence_retries: int = 3
    lr_backoff: float = 0.5

    def __post_init__(self):
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ValueError("patience must be positive (or None)")
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive (or None)")
        if self.max_divergence_retries < 0:
            raise ValueError("max_divergence_retries cannot be negative")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError("lr_backoff must lie in (0, 1]")

    def make_optimizer(self, parameters, lr: float | None = None):
        try:
            factory = _OPTIMIZERS[self.optimizer]
        except KeyError:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; "
                f"choose from {sorted(_OPTIMIZERS)}"
            ) from None
        return factory(parameters, lr=self.lr if lr is None else lr)


@dataclass
class TrainingHistory:
    """Per-epoch loss and wall-clock record (the §8.1 training-time data)."""

    losses: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    active_samples: list[int] = field(default_factory=list)
    stopped_early: bool = False
    # Divergence-recovery record: how many non-finite losses were hit and
    # the learning rates applied after each rollback.
    divergences: int = 0
    lr_backoffs: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]

    @property
    def seconds_per_epoch(self) -> float:
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0

    @property
    def total_seconds(self) -> float:
        return float(np.sum(self.epoch_seconds))


class Trainer:
    """Runs the epoch loop of one model over one data loader.

    ``profiler`` receives per-epoch telemetry (loss, active samples,
    learning rate) and divergence-rollback events; it defaults to the
    process-wide :func:`repro.obs.get_profiler`, whose gauges back the
    observability layer's ``repro_training_*`` metrics.
    """

    def __init__(self, model: SetModel, config: TrainConfig,
                 profiler: TrainingProfiler | None = None):
        self.model = model
        self.config = config
        self.optimizer = config.make_optimizer(model.parameters())
        self.loss_fn = resolve_loss(config.loss)
        self.profiler = profiler if profiler is not None else get_profiler()

    def fit(
        self,
        loader: SetDataLoader,
        epoch_end: Callable[[int, "Trainer"], None] | None = None,
    ) -> TrainingHistory:
        """Train for ``config.epochs`` epochs.

        ``epoch_end(epoch, trainer)`` runs after each epoch (1-based); it
        may call ``loader.deactivate`` — subsequent epochs then skip the
        evicted samples, which is exactly the guided-learning protocol.
        Epochs that diverge are rolled back and retried; ``epoch_end`` only
        sees epochs that completed with finite losses.
        """
        history = TrainingHistory()
        # Any attached inference plan is stale the moment training starts
        # moving weights; bump immediately (not just at the end) so a frozen
        # plan can never serve mid-fit weights.
        self.model.bump_weights_version()
        best_loss = float("inf")
        stale_epochs = 0
        # Rollback target: the weights of the best finite epoch so far
        # (the initial weights until one exists).
        checkpoint = self.model.state_dict()
        checkpoint_loss = float("inf")
        retries_left = self.config.max_divergence_retries
        self.model.train()
        epoch = 1
        while epoch <= self.config.epochs:
            started = time.perf_counter()
            epoch_loss = 0.0
            samples = 0
            diverged = False
            sample_weights = getattr(loader, "weights", None)
            for batch, targets, chunk in loader:
                predictions = self.model(batch)
                if sample_weights is None:
                    loss = self.loss_fn(predictions, targets.reshape(-1, 1))
                else:
                    loss = self.loss_fn(
                        predictions,
                        targets.reshape(-1, 1),
                        weights=sample_weights[chunk].reshape(-1, 1),
                    )
                loss_value = corrupt_loss(loss.item())
                if not math.isfinite(loss_value):
                    # Abandon the epoch before the bad gradients can
                    # propagate into the weights.
                    diverged = True
                    break
                self.optimizer.zero_grad()
                loss.backward()
                if self.config.grad_clip_norm is not None:
                    self._clip_gradients(self.config.grad_clip_norm)
                self.optimizer.step()
                epoch_loss += loss_value * len(batch)
                samples += len(batch)
            if diverged:
                history.divergences += 1
                if retries_left <= 0:
                    self.model.eval()
                    raise TrainingDivergedError(
                        f"non-finite loss at epoch {epoch} with no retries "
                        f"left (lr={self.optimizer.lr:g}, "
                        f"divergences={history.divergences})"
                    )
                retries_left -= 1
                self._rollback(checkpoint, history)
                continue  # retry the same epoch with smaller steps
            mean_loss = epoch_loss / max(samples, 1)
            history.losses.append(mean_loss)
            history.epoch_seconds.append(time.perf_counter() - started)
            history.active_samples.append(loader.num_active)
            self.profiler.on_epoch(
                epoch, mean_loss, loader.num_active, self.optimizer.lr
            )
            if self.config.verbose:
                print(
                    f"epoch {epoch:3d}/{self.config.epochs}  "
                    f"loss={mean_loss:.5f}  active={loader.num_active}"
                )
            if math.isfinite(mean_loss) and mean_loss < checkpoint_loss:
                checkpoint_loss = mean_loss
                checkpoint = self.model.state_dict()
            if epoch_end is not None:
                epoch_end(epoch, self)
            if self.config.patience is not None:
                if mean_loss < best_loss - self.config.min_delta:
                    best_loss = mean_loss
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.config.patience:
                        history.stopped_early = True
                        break
            epoch += 1
        self.model.eval()
        self.model.bump_weights_version()
        self.profiler.on_fit_end(history)
        return history

    def _rollback(self, checkpoint: dict[str, np.ndarray], history: TrainingHistory) -> None:
        """Restore the best weights and rebuild the optimizer at a smaller lr.

        The optimizer is rebuilt from scratch: Adam/RMSprop moments computed
        from the diverged trajectory would re-poison the retried epoch.
        """
        self.model.load_state_dict(checkpoint)
        new_lr = self.optimizer.lr * self.config.lr_backoff
        self.optimizer = self.config.make_optimizer(self.model.parameters(), lr=new_lr)
        history.lr_backoffs.append(new_lr)
        self.profiler.on_divergence(new_lr)

    def _clip_gradients(self, max_norm: float) -> None:
        """Scale all gradients so their global L2 norm is <= ``max_norm``."""
        total = 0.0
        for parameter in self.optimizer.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = total**0.5
        if norm > max_norm:
            scale = max_norm / norm
            for parameter in self.optimizer.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
