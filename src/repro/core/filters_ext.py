"""Learned Bloom filter variants from the paper's related work (§2).

The paper builds on Kraska et al.'s learned Bloom filter (model + backup);
two published refinements are implemented here as extensions so the design
space the paper cites is explorable within this codebase:

* :class:`SandwichedLearnedBloomFilter` (Mitzenmacher, NeurIPS 2018) — an
  *initial* Bloom filter in front of the model removes most true negatives
  before they ever reach the classifier, which lets the backup filter be
  smaller for the same overall false-positive rate.
* :class:`PartitionedLearnedBloomFilter` (Vaidya et al., ICLR 2021) — the
  classifier score range is split into segments, each with its own backup
  filter whose false-positive budget reflects how trustworthy scores in
  that segment are (high-score regions need almost no backing).

Both wrap the same DeepSets/CLSM classifier used by
:class:`repro.core.membership.LearnedBloomFilter` and preserve the
no-false-negative guarantee over the indexed positives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..baselines.bloom import BloomFilter
from ..nn.serialize import state_dict_bytes
from .deepsets import SetModel

__all__ = ["SandwichedLearnedBloomFilter", "PartitionedLearnedBloomFilter"]


class SandwichedLearnedBloomFilter:
    """Initial filter -> classifier -> backup filter.

    Construction takes an already-trained classifier (sharing it with a
    plain learned filter is the common setup) plus the positive universe;
    the initial filter indexes *all* positives at a loose fp rate, the
    backup only the classifier's misses.
    """

    def __init__(
        self,
        model: SetModel,
        positives: Sequence[tuple[int, ...]],
        threshold: float = 0.5,
        initial_fp_rate: float = 0.05,
        backup_fp_rate: float = 0.01,
    ):
        if not positives:
            raise ValueError("at least one positive is required")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.model = model
        self.threshold = threshold
        self.initial = BloomFilter(capacity=len(positives), fp_rate=initial_fp_rate)
        for positive in positives:
            self.initial.add_set(positive)
        scores = model.predict([tuple(sorted(set(p))) for p in positives])
        missed = [p for p, score in zip(positives, scores) if score < threshold]
        self.backup: BloomFilter | None = None
        if missed:
            self.backup = BloomFilter(capacity=len(missed), fp_rate=backup_fp_rate)
            for positive in missed:
                self.backup.add_set(positive)
        self.num_backup_entries = len(missed)

    def contains(self, query: Iterable[int]) -> bool:
        """Sandwich evaluation: initial filter, then model, then backup."""
        canonical = tuple(sorted(set(query)))
        if not self.initial.contains_set(canonical):
            return False  # definitely absent: the initial filter is exact-negative
        if self.model.predict_one(canonical) >= self.threshold:
            return True
        if self.backup is not None:
            return self.backup.contains_set(canonical)
        return False

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def total_bytes(self) -> int:
        """Model + both filters."""
        backup = self.backup.size_bytes() if self.backup else 0
        return state_dict_bytes(self.model) + self.initial.size_bytes() + backup


class PartitionedLearnedBloomFilter:
    """Score-segmented backup filters (partitioned LBF).

    The score axis ``[0, 1]`` is cut at ``boundaries``; positives falling
    into segment ``i`` are indexed by that segment's own Bloom filter with
    fp rate ``fp_rates[i]``.  Low-score segments (where the model distrusts
    itself) get strict filters; the top segment typically needs none —
    queries scoring there are accepted outright.
    """

    def __init__(
        self,
        model: SetModel,
        positives: Sequence[tuple[int, ...]],
        boundaries: Sequence[float] = (0.3, 0.7),
        fp_rates: Sequence[float] = (0.001, 0.01),
        accept_top_segment: bool = True,
    ):
        if not positives:
            raise ValueError("at least one positive is required")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("boundaries must be sorted ascending")
        if any(not 0.0 < b < 1.0 for b in boundaries):
            raise ValueError("boundaries must lie strictly inside (0, 1)")
        expected = len(boundaries) + (0 if accept_top_segment else 1)
        if len(fp_rates) != expected:
            raise ValueError(
                f"need {expected} fp rates for {len(boundaries)} boundaries "
                f"(accept_top_segment={accept_top_segment})"
            )
        self.model = model
        self.boundaries = list(boundaries)
        self.accept_top_segment = accept_top_segment

        canonicals = [tuple(sorted(set(p))) for p in positives]
        scores = model.predict(canonicals)
        segments = np.searchsorted(self.boundaries, scores)
        num_filters = len(fp_rates)
        self.filters: list[BloomFilter | None] = [None] * num_filters
        for segment in range(num_filters):
            members = [
                canonical
                for canonical, seg in zip(canonicals, segments)
                if seg == segment
            ]
            if members:
                bloom = BloomFilter(capacity=len(members), fp_rate=fp_rates[segment])
                for member in members:
                    bloom.add_set(member)
                self.filters[segment] = bloom

    def segment_of(self, score: float) -> int:
        """Index of the score segment (0 = lowest scores)."""
        return int(np.searchsorted(self.boundaries, score))

    def contains(self, query: Iterable[int]) -> bool:
        canonical = tuple(sorted(set(query)))
        score = self.model.predict_one(canonical)
        segment = self.segment_of(score)
        if self.accept_top_segment and segment == len(self.boundaries):
            return True
        bloom = self.filters[segment] if segment < len(self.filters) else None
        return bloom.contains_set(canonical) if bloom is not None else False

    def __contains__(self, query: Iterable[int]) -> bool:
        return self.contains(query)

    def total_bytes(self) -> int:
        filters = sum(f.size_bytes() for f in self.filters if f is not None)
        return state_dict_bytes(self.model) + filters
