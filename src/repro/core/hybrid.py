"""Hybrid structure with guided learning and error bounds (paper Section 6).

Two cooperating pieces:

* :func:`guided_fit` — the iterative training protocol: train for a warm-up,
  then at chosen epochs score every active sample, evict those whose error
  exceeds a percentile (or absolute) threshold into the *outlier* set, and
  keep training on the remainder.  The model fits the learnable mass; the
  auxiliary structure answers exactly for the rest.
* :class:`LocalErrorBounds` — per-range maximum absolute errors over the
  *predicted-value axis* (Algorithm 2's ``errors[r]``).  A single global
  bound makes every index lookup scan as far as the worst prediction;
  bucketing confines a bad outlier's damage to its own range, which the
  paper shows cuts the average scanned window by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nn.data import RaggedArray, SetDataLoader
from ..obs.profiler import TrainingProfiler, get_profiler
from .deepsets import SetModel
from .qerror import absolute_error, q_error
from .scaling import LogMinMaxScaler
from .training import TrainConfig, Trainer, TrainingHistory

__all__ = [
    "OutlierRemovalConfig",
    "GuidedFitResult",
    "guided_fit",
    "LocalErrorBounds",
]


@dataclass
class OutlierRemovalConfig:
    """When and how aggressively to evict hard samples.

    ``percentile`` is the paper's knob: at each removal epoch the samples
    whose error exceeds that percentile of the current error distribution
    move to the auxiliary structure.  ``None`` disables removal (the
    "No Removal" columns of Table 5).  ``error_kind`` selects the error the
    threshold applies to (q-error for both regression tasks).
    ``max_fraction_removed`` is a safety valve: guided learning degenerates
    to a plain traditional structure if it evicts everything (§6's "worst
    case"), so eviction stops once that fraction of the corpus is outliers.
    """

    percentile: float | None = 90.0
    at_epochs: tuple[int, ...] = (10,)
    error_kind: str = "q_error"
    max_fraction_removed: float = 0.5

    def __post_init__(self):
        if self.percentile is not None and not 0.0 < self.percentile < 100.0:
            raise ValueError("percentile must lie in (0, 100)")
        if self.error_kind not in ("q_error", "absolute"):
            raise ValueError("error_kind must be 'q_error' or 'absolute'")


@dataclass
class GuidedFitResult:
    """Outcome of a guided training run."""

    history: TrainingHistory
    outlier_indices: np.ndarray
    # Per-sample errors measured on the final model over ALL samples
    # (outliers included) — used for error bounds and reporting.
    final_errors_abs: np.ndarray
    final_predictions: np.ndarray
    # Reliability telemetry: how often ``max_fraction_removed`` clipped or
    # blocked an eviction, and whether an eviction had to be clamped to
    # keep the active training set non-empty.
    budget_hits: int = 0
    eviction_clamped: bool = False

    @property
    def num_outliers(self) -> int:
        return int(len(self.outlier_indices))


def _sample_errors(
    model: SetModel,
    ragged: RaggedArray,
    indices: np.ndarray,
    targets: np.ndarray,
    scaler: LogMinMaxScaler,
    kind: str,
) -> np.ndarray:
    # predict() runs over the whole ragged corpus; select the rows we need.
    scaled = model.predict(ragged, batch_size=8192)
    estimates = scaler.inverse(scaled[indices])
    truths = targets[indices]
    if kind == "q_error":
        return q_error(estimates, truths)
    return absolute_error(estimates, truths)


def guided_fit(
    model: SetModel,
    sets: Sequence | RaggedArray,
    targets: np.ndarray,
    scaler: LogMinMaxScaler,
    train_config: TrainConfig,
    removal: OutlierRemovalConfig | None = None,
    rng: np.random.Generator | None = None,
    profiler: TrainingProfiler | None = None,
    sample_weights: np.ndarray | None = None,
) -> GuidedFitResult:
    """Train ``model`` with iterative outlier eviction.

    ``targets`` are in the original space (positions or cardinalities); the
    loader is built on the scaled space.  Returns the history, the evicted
    indices, and final per-sample absolute errors over the full corpus.
    Eviction counts and budget hits are reported to ``profiler`` (the
    process-wide training profiler by default), alongside the per-epoch
    telemetry the inner :class:`Trainer` emits.

    ``sample_weights`` (optional, one non-negative weight per sample) turn
    the loss into a weighted mean, which is how the workload-adaptive path
    (:mod:`repro.adapt`) makes frequently-observed queries dominate a
    refresh fit.  Outlier scoring stays *unweighted*: eviction thresholds
    are about per-sample error magnitude, not workload mass.
    """
    ragged = sets if isinstance(sets, RaggedArray) else RaggedArray(sets)
    targets = np.asarray(targets, dtype=np.float64)
    scaled_targets = scaler.transform(targets)
    loader = SetDataLoader(
        ragged,
        scaled_targets,
        batch_size=train_config.batch_size,
        rng=rng or np.random.default_rng(train_config.seed),
        weights=sample_weights,
    )
    profiler = profiler if profiler is not None else get_profiler()
    trainer = Trainer(model, train_config, profiler=profiler)
    total = len(ragged)
    outliers: list[np.ndarray] = []
    removal_stats = {"budget_hits": 0, "clamped": False}

    def epoch_end(epoch: int, _trainer: Trainer) -> None:
        if removal is None or removal.percentile is None:
            return
        if epoch not in removal.at_epochs:
            return
        already_removed = total - loader.num_active
        budget = int(removal.max_fraction_removed * total) - already_removed
        if budget <= 0:
            removal_stats["budget_hits"] += 1
            profiler.on_budget_hit()
            return
        active = loader.active_indices()
        errors = _sample_errors(
            model, ragged, active, targets, scaler, removal.error_kind
        )
        threshold = np.percentile(errors, removal.percentile)
        evict_mask = errors > threshold
        evict = active[evict_mask]
        if len(evict) > budget:
            # Evict the worst offenders first when clipped by the budget.
            order = np.argsort(errors[evict_mask])[::-1]
            evict = evict[order[:budget]]
            removal_stats["budget_hits"] += 1
            profiler.on_budget_hit()
        if len(evict) >= len(active):
            # An extreme percentile must never evict the whole corpus:
            # guided learning with nothing left to train on is §6's
            # degenerate worst case.  Keep the best-fitting sample active.
            keep = active[np.argmin(errors)]
            evict = evict[evict != keep]
            removal_stats["clamped"] = True
        if len(evict):
            loader.deactivate(evict)
            outliers.append(evict)
            profiler.on_eviction(len(evict))
        assert loader.num_active > 0, "guided eviction emptied the training set"

    history = trainer.fit(loader, epoch_end=epoch_end)

    outlier_indices = (
        np.sort(np.concatenate(outliers)) if outliers else np.empty(0, dtype=np.int64)
    )
    final_scaled = model.predict(ragged, batch_size=8192)
    final_estimates = scaler.inverse(final_scaled)
    return GuidedFitResult(
        history=history,
        outlier_indices=outlier_indices,
        final_errors_abs=absolute_error(final_estimates, targets),
        final_predictions=final_estimates,
        budget_hits=removal_stats["budget_hits"],
        eviction_clamped=removal_stats["clamped"],
    )


class LocalErrorBounds:
    """Per-range maximum absolute error over predicted positions (Alg. 2).

    The prediction axis ``[min_value, max_value]`` is divided into buckets
    of ``range_length``; each bucket stores the largest absolute error any
    (non-outlier) training sample landing in it produced.  A lookup maps an
    estimate to its bucket's bound — the window the sequential search must
    cover.
    """

    def __init__(
        self,
        estimates: np.ndarray,
        truths: np.ndarray,
        range_length: int = 100,
        min_value: float = 0.0,
        max_value: float | None = None,
    ):
        if range_length <= 0:
            raise ValueError("range_length must be positive")
        estimates = np.asarray(estimates, dtype=np.float64)
        truths = np.asarray(truths, dtype=np.float64)
        if estimates.shape != truths.shape:
            raise ValueError("estimates and truths must align")
        self.range_length = int(range_length)
        self.min_value = float(min_value)
        if max_value is None:
            max_value = float(estimates.max()) if len(estimates) else min_value
        self.max_value = float(max_value)
        num_buckets = (
            int((self.max_value - self.min_value) // self.range_length) + 1
        )
        self.errors = np.zeros(max(num_buckets, 1), dtype=np.float64)
        if len(estimates):
            buckets = self._bucket_of(estimates)
            np.maximum.at(self.errors, buckets, np.abs(estimates - truths))
        self.global_error = float(np.abs(estimates - truths).max()) if len(
            estimates
        ) else 0.0

    def _bucket_of(self, estimates: np.ndarray) -> np.ndarray:
        raw = ((np.asarray(estimates) - self.min_value) // self.range_length).astype(
            np.int64
        )
        return np.clip(raw, 0, len(self.errors) - 1)

    def bound(self, estimate: float) -> float:
        """Maximum absolute error for predictions near ``estimate``."""
        return float(self.errors[self._bucket_of(np.asarray([estimate]))[0]])

    def mean_bound(self) -> float:
        """Average per-bucket bound — the paper's local-vs-global headline."""
        return float(self.errors.mean())

    def size_bytes(self) -> int:
        """Footprint of the stored error list (the Err. column of Table 7)."""
        return int(self.errors.nbytes)

    def __len__(self) -> int:
        return len(self.errors)
