"""The DeepSets architecture (paper Figure 2) — the LSM family.

``f(X) = rho( pool_{x in X} phi(embed(x)) )``: a shared element embedding,
an elementwise ``phi`` network, a permutation-invariant pooling (sum by
default), and a ``rho`` network producing the output (position, cardinality
estimate, or membership probability — all through a sigmoid head, Table 1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.data import RaggedArray, SetBatch
from ..nn.layers import MLP, Embedding, Identity
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["SetModel", "DeepSetsModel", "POOLINGS"]

POOLINGS = ("sum", "mean", "max")


def _pool(name: str, x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    if name == "sum":
        return F.segment_sum(x, segment_ids, num_segments)
    if name == "mean":
        return F.segment_mean(x, segment_ids, num_segments)
    if name == "max":
        return F.segment_max(x, segment_ids, num_segments)
    raise ValueError(f"unknown pooling {name!r}; choose from {POOLINGS}")


class SetModel(Module):
    """Base class for set-to-vector models: batched numpy prediction."""

    def forward(self, batch: SetBatch) -> Tensor:
        raise NotImplementedError

    def predict(
        self,
        sets: Sequence[Iterable[int]] | RaggedArray,
        batch_size: int = 4096,
    ) -> np.ndarray:
        """Forward a corpus of sets in inference mode; returns shape (n,).

        Used by evaluation and by the hybrid structure's error computation;
        graph recording is disabled so this is allocation-light.
        """
        ragged = sets if isinstance(sets, RaggedArray) else RaggedArray(sets)
        outputs = np.empty(len(ragged), dtype=np.float64)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                for start in range(0, len(ragged), batch_size):
                    indices = np.arange(start, min(start + batch_size, len(ragged)))
                    batch = ragged.batch(indices)
                    outputs[indices] = self.forward(batch).data.ravel()
        finally:
            self.train(was_training)
        return outputs

    def predict_one(self, elements: Iterable[int]) -> float:
        """Single-set prediction (the per-query path of the latency tables)."""
        batch = SetBatch.from_sets([list(elements)])
        with no_grad():
            return float(self.forward(batch).data.ravel()[0])


class DeepSetsModel(SetModel):
    """Non-compressed learned set model (LSM).

    Parameters
    ----------
    vocab_size:
        Number of distinct element ids (embedding rows).
    embedding_dim:
        Shared embedding width (the paper sweeps 2–32).
    phi_hidden:
        Hidden widths of the elementwise ``phi`` network; empty means the
        pooled representation is the raw embedding.
    rho_hidden:
        Hidden widths of the post-pooling ``rho`` network (8–256 neurons,
        1–2 layers in the paper's sweep).
    pooling:
        Permutation-invariant reduction: ``sum`` (paper default), ``mean``,
        or ``max``.
    out_activation:
        Output head; ``sigmoid`` for every task in Table 1.
    """

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int = 8,
        phi_hidden: Sequence[int] = (32,),
        rho_hidden: Sequence[int] = (32,),
        pooling: str = "sum",
        out_activation: str = "sigmoid",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if pooling not in POOLINGS:
            raise ValueError(f"unknown pooling {pooling!r}; choose from {POOLINGS}")
        rng = rng or np.random.default_rng()
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.pooling = pooling
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        if phi_hidden:
            self.phi = MLP(
                embedding_dim,
                list(phi_hidden[:-1]),
                phi_hidden[-1],
                activation="relu",
                out_activation="relu",
                rng=rng,
            )
            pooled_dim = phi_hidden[-1]
        else:
            self.phi = Identity()
            pooled_dim = embedding_dim
        self.rho = MLP(
            pooled_dim,
            list(rho_hidden),
            1,
            activation="relu",
            out_activation=out_activation,
            rng=rng,
        )

    def forward(self, batch: SetBatch) -> Tensor:
        embedded = self.embedding(batch.elements)
        transformed = self.phi(embedded)
        pooled = _pool(self.pooling, transformed, batch.segment_ids, batch.num_sets)
        return self.rho(pooled)

    def embedding_parameters(self) -> int:
        """Embedding-table weight count — the term compression attacks."""
        return self.embedding.weight.data.size
