"""Thread-safe metrics registry with Prometheus-style text exposition.

The registry is the single telemetry surface for the whole stack: the
serving layer (:class:`repro.serve.ServerStats`), the reliability facades
(:class:`repro.reliability.HealthCounters`), the sharded routers, and the
training profiler all store or expose their counters here, and the
``METRICS`` verb of the TCP frontend renders one coherent exposition an
operator (or a real Prometheus scraper) can parse.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing (``inc``);
* :class:`Gauge` — settable value, optionally *callback-backed*
  (``set_function``) so the exposition reads live state without the owner
  pushing updates;
* :class:`Histogram` — fixed-bucket distribution (``observe``) rendered as
  cumulative ``_bucket``/``_sum``/``_count`` samples.

Every metric belongs to a family (one name + help + label names); families
with labels hand out per-labelset children via :meth:`MetricFamily.labels`,
and label-less families proxy the child API directly
(``registry.counter("x").inc()``).  Registration is idempotent: asking for
an existing name with the same kind and labels returns the same family,
while a kind or label mismatch raises — duplicate metric names can never
reach the exposition.

Everything here is dependency-free and picklable (locks are dropped and
recreated), because health counters travel inside pickled guarded
structures.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Callable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "global_registry",
    "merge_expositions",
    "relabel_exposition",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Serving latencies span cache hits (~µs) to shed exact scans (~100ms).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


class _Metric:
    """One concrete time series (a family child); owns its own lock."""

    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """``(name_suffix, extra_labels, value)`` rows for the exposition."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self):
        super().__init__()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (operator resets, e.g. HealthCounters.reset)."""
        with self._lock:
            self._value = 0.0

    def samples(self):
        return [("", {}, self.value)]


class Gauge(_Metric):
    """Settable value; optionally reads a callback at exposition time."""

    kind = "gauge"

    def __init__(self):
        super().__init__()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> "Gauge":
        """Back the gauge with ``fn`` — evaluated on every read, so the
        exposition always reflects live state (cache sizes, hit rates)."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return math.nan
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def samples(self):
        return [("", {}, self.value)]

    def __getstate__(self):
        state = super().__getstate__()
        # A callback closes over live objects (servers, caches) that must
        # not ride along in a pickle; the restored gauge is value-backed.
        state.pop("_fn", None)
        return state

    def __setstate__(self, state):
        super().__setstate__(state)
        self._fn = None


class Histogram(_Metric):
    """Fixed-bucket distribution of observed values."""

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__()
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: > max bound
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def samples(self):
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        rows = []
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            rows.append(("_bucket", {"le": _format_number(bound)}, cumulative))
        rows.append(("_bucket", {"le": "+Inf"}, total_count))
        rows.append(("_sum", {}, total_sum))
        rows.append(("_count", {}, total_count))
        return rows


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One metric name: help text, kind, label names, per-labelset children.

    Label-less families own a single default child and proxy its API
    (``inc`` / ``set`` / ``observe`` / ``value`` …), so the common case
    reads as ``registry.counter("x_total").inc()``.
    """

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Sequence[str] = (), **metric_kwargs):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._metric_kwargs = metric_kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Metric] = {}
        if not self.labelnames:
            self._children[()] = _KINDS[kind](**metric_kwargs)

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child for one labelset (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _KINDS[self.kind](
                    **self._metric_kwargs
                )
            return child

    def items(self) -> list[tuple[dict[str, str], _Metric]]:
        """``(labels_dict, child)`` pairs in insertion order."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in self._children.items()
            ]

    def per_label_values(self) -> dict[tuple[str, ...], float]:
        """Label values -> current value (scalar metrics only)."""
        return {
            tuple(labels.values()): child.value
            for labels, child in self.items()
        }

    def reset(self) -> None:
        for _, child in self.items():
            child.reset()

    # -- default-child proxy (label-less families) ---------------------------

    def _default(self) -> _Metric:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def set_function(self, fn: Callable[[], float]) -> "MetricFamily":
        self._default().set_function(fn)
        return self

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value


class MetricsRegistry:
    """Named metric families + the Prometheus-style text exposition.

    Thread-safe; registration is idempotent for identical declarations and
    raises on kind/label mismatches, so an exposition can never contain two
    families with the same name.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------

    def _register(self, name: str, help: str, kind: str,
                  labelnames: Sequence[str], **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = MetricFamily(name, help, kind, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help, "gauge", labelnames)

    def gauge_function(self, name: str, help: str,
                       fn: Callable[[], float]) -> MetricFamily:
        """Register a callback-backed gauge in one call."""
        return self.gauge(name, help).set_function(fn)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labelnames: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(
            name, help, "histogram", labelnames, buckets=buckets
        )

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._families)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    # -- exposition -----------------------------------------------------------

    def render_text(self) -> str:
        """Prometheus text exposition over every registered family."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.items():
                for suffix, extra, value in child.samples():
                    merged = {**labels, **extra}
                    lines.append(
                        f"{family.name}{suffix}{_format_labels(merged)} "
                        f"{_format_number(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict[str, float]:
        """Flat ``name{labels}`` -> value map (JSON-friendly snapshot)."""
        out: dict[str, float] = {}
        for family in self.families():
            for labels, child in family.items():
                for suffix, extra, value in child.samples():
                    merged = {**labels, **extra}
                    out[f"{family.name}{suffix}{_format_labels(merged)}"] = value
        return out


_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s(.*)$"
)


def relabel_exposition(text: str, labels: dict[str, str]) -> str:
    """Inject ``labels`` into every sample line of a text exposition.

    Used by the worker pool to mark each worker's exposition with a
    ``worker="N"`` label before merging, so per-worker series stay
    distinguishable in the aggregated scrape.  Comment lines (HELP/TYPE)
    pass through unchanged; existing labels are preserved after the
    injected ones.
    """
    if not labels:
        return text
    prefix = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    )
    lines = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            lines.append(line)
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            lines.append(line)
            continue
        name, existing, value = match.groups()
        body = prefix + ("," + existing if existing else "")
        lines.append(f"{name}{{{body}}} {value}")
    return "\n".join(lines) + ("\n" if text.endswith("\n") else "")


def merge_expositions(
    sections: Sequence[tuple[dict[str, str], str]]
) -> str:
    """Merge several text expositions into one, de-duplicating metadata.

    ``sections`` is a list of ``(labels, exposition_text)``; each
    section's samples are relabeled with its labels, and repeated
    ``# HELP`` / ``# TYPE`` lines (the same families exist in every
    worker) appear once.
    """
    seen_comments: set[str] = set()
    lines: list[str] = []
    for labels, text in sections:
        for line in relabel_exposition(text, labels).splitlines():
            if line.startswith("#"):
                if line in seen_comments:
                    continue
                seen_comments.add(line)
            if line:
                lines.append(line)
    return "\n".join(lines) + ("\n" if lines else "")


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: MetricsRegistry | None = None


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (training profiler, builders)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL
