"""Unified observability layer: metrics, tracing, training profiling.

``repro.obs`` is the dependency-free telemetry substrate every other
subsystem reports into:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of named
  counters, gauges, and fixed-bucket histograms with a Prometheus-style
  text exposition (``registry.render_text()``, served by the TCP
  frontend's ``METRICS`` verb);
* :mod:`repro.obs.trace` — lightweight nested spans over the query path
  (``with trace("model_forward", batch_size=n):``) in a bounded in-memory
  buffer, dumped by the ``TRACE`` verb / ``repro trace-dump``;
* :mod:`repro.obs.profiler` — :class:`TrainingProfiler` gauges wired into
  ``Trainer.fit`` and ``guided_fit`` (per-epoch loss, active samples,
  divergence rollbacks, guided-eviction counts).

The serving stats (:class:`repro.serve.ServerStats`) and reliability
health counters (:class:`repro.reliability.HealthCounters`) store their
counters *in* a registry, so one exposition covers the whole stack.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    global_registry,
)
from .profiler import TrainingProfiler, get_profiler, set_profiler
from .trace import Tracer, get_tracer, set_tracer, trace

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Tracer",
    "TrainingProfiler",
    "get_profiler",
    "get_tracer",
    "global_registry",
    "set_profiler",
    "set_tracer",
    "trace",
]
