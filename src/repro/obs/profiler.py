"""Training profiler: per-epoch loss/eviction telemetry as registry gauges.

:class:`repro.core.training.Trainer` and
:func:`repro.core.hybrid.guided_fit` report into a
:class:`TrainingProfiler`, which maintains the training-side gauges of the
observability layer:

* ``repro_training_epoch`` / ``repro_training_loss`` /
  ``repro_training_active_samples`` / ``repro_training_lr`` — live state of
  the current (or last) fit;
* ``repro_training_divergences_total`` / ``repro_training_lr_backoffs_total``
  — divergence-rollback events (the reliability layer's NaN recovery);
* ``repro_training_evictions_total`` /
  ``repro_training_eviction_budget_hits_total`` — guided-learning outlier
  eviction (the paper's Section 6 protocol; the active-samples gauge is the
  live view of its training-set shrinkage);
* ``repro_training_runs_total`` / ``repro_training_final_loss`` /
  ``repro_training_total_seconds`` / ``repro_training_epochs_completed`` /
  ``repro_training_stopped_early`` — last-run summary.

By default every trainer reports into one process-wide profiler backed by
the global registry (:func:`get_profiler`); pass an explicit profiler to
isolate runs (tests, concurrent builds).
"""

from __future__ import annotations

import threading

from .metrics import MetricsRegistry, global_registry

__all__ = ["TrainingProfiler", "get_profiler", "set_profiler"]


class TrainingProfiler:
    """Registry-backed sink for training-loop telemetry."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else global_registry()
        reg = self.registry
        self._epoch = reg.gauge(
            "repro_training_epoch", "Current (or last completed) epoch")
        self._loss = reg.gauge(
            "repro_training_loss", "Mean loss of the last completed epoch")
        self._active = reg.gauge(
            "repro_training_active_samples",
            "Training samples still active after guided eviction")
        self._lr = reg.gauge(
            "repro_training_lr", "Current learning rate (after backoffs)")
        self._divergences = reg.counter(
            "repro_training_divergences_total",
            "Non-finite epoch losses that triggered a rollback")
        self._backoffs = reg.counter(
            "repro_training_lr_backoffs_total",
            "Learning-rate backoffs applied after divergences")
        self._evictions = reg.counter(
            "repro_training_evictions_total",
            "Samples evicted to the auxiliary structure by guided learning")
        self._budget_hits = reg.counter(
            "repro_training_eviction_budget_hits_total",
            "Evictions clipped or blocked by max_fraction_removed")
        self._runs = reg.counter(
            "repro_training_runs_total", "Completed Trainer.fit runs")
        self._final_loss = reg.gauge(
            "repro_training_final_loss", "Final epoch loss of the last run")
        self._total_seconds = reg.gauge(
            "repro_training_total_seconds",
            "Wall-clock seconds of the last run")
        self._epochs_completed = reg.gauge(
            "repro_training_epochs_completed",
            "Epochs the last run completed")
        self._stopped_early = reg.gauge(
            "repro_training_stopped_early",
            "Whether the last run stopped on the patience criterion (0/1)")

    # -- hooks called by the training loop ------------------------------------

    def on_epoch(self, epoch: int, loss: float, active_samples: int,
                 lr: float) -> None:
        """One finite epoch completed."""
        self._epoch.set(epoch)
        self._loss.set(loss)
        self._active.set(active_samples)
        self._lr.set(lr)

    def on_divergence(self, new_lr: float) -> None:
        """A non-finite loss forced a rollback and LR backoff."""
        self._divergences.inc()
        self._backoffs.inc()
        self._lr.set(new_lr)

    def on_eviction(self, count: int) -> None:
        """Guided learning moved ``count`` samples to the auxiliary."""
        self._evictions.inc(count)

    def on_budget_hit(self) -> None:
        """``max_fraction_removed`` clipped or blocked an eviction."""
        self._budget_hits.inc()

    def on_fit_end(self, history) -> None:
        """A :class:`TrainingHistory`-shaped run finished."""
        self._runs.inc()
        if history.losses:
            self._final_loss.set(history.final_loss)
            self._epochs_completed.set(len(history.losses))
        self._total_seconds.set(history.total_seconds)
        self._stopped_early.set(1.0 if history.stopped_early else 0.0)


_DEFAULT_LOCK = threading.Lock()
_DEFAULT: TrainingProfiler | None = None


def get_profiler() -> TrainingProfiler:
    """The process-wide default profiler (global-registry backed)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = TrainingProfiler()
        return _DEFAULT


def set_profiler(profiler: TrainingProfiler) -> TrainingProfiler:
    """Replace the process-wide default profiler (tests, embedders)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = profiler
    return profiler
