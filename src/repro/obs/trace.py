"""Lightweight per-stage tracing spans for the query path.

A :class:`Tracer` records named spans — ``with tracer.span("model_forward",
batch_size=32):`` — into a bounded in-memory ring buffer.  The serving
stack instruments every stage a query crosses (encode, cache lookup,
micro-batch wait, model forward, guard fallback, shard fan-out), so an
operator can ask a live server *where* its latency goes via the ``TRACE``
verb or ``repro trace-dump`` without attaching a profiler.

Spans nest: a span opened while another is active on the same thread
records that span as its parent, so a dump reconstructs per-request stage
trees.  Recording is O(1) (one lock, one deque append); when the buffer is
full the oldest span is dropped and counted, never blocking the hot path.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Tracer", "get_tracer", "set_tracer", "trace"]


class Tracer:
    """Bounded in-memory span buffer with nesting support.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity; the oldest spans are dropped (and counted in
        :attr:`dropped`) once it fills.
    enabled:
        ``False`` turns every span into a no-op — the instrumentation can
        stay in place at zero cost.
    """

    def __init__(self, max_spans: int = 4096, enabled: bool = True):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: deque[dict[str, Any]] = deque(maxlen=max_spans)
        self._dropped = 0
        self._ids = itertools.count(1)
        self._active = threading.local()

    # -- recording ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict[str, Any]]:
        """Record one span around the enclosed block.

        Yields the (mutable) span dict so callers can attach attributes
        discovered mid-stage (``span["attrs"]["hit"] = True``).
        """
        if not self.enabled:
            yield {"attrs": {}}
            return
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        span = {
            "span_id": next(self._ids),
            "parent_id": stack[-1]["span_id"] if stack else None,
            "name": name,
            "start": time.time(),
            "duration_ms": 0.0,
            "attrs": dict(attrs),
        }
        stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span["duration_ms"] = (time.perf_counter() - started) * 1000.0
            stack.pop()
            self._append(span)

    def record(self, name: str, duration_ms: float, **attrs: Any) -> None:
        """Record an already-measured span (e.g. a queue wait)."""
        if not self.enabled:
            return
        self._append(
            {
                "span_id": next(self._ids),
                "parent_id": None,
                "name": name,
                "start": time.time(),
                "duration_ms": float(duration_ms),
                "attrs": dict(attrs),
            }
        )

    def _append(self, span: dict[str, Any]) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(span)

    # -- reading --------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer since the last :meth:`clear`."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def snapshot(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The most recent spans (oldest first); ``limit`` caps the count."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [dict(span, attrs=dict(span["attrs"])) for span in spans]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0


_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Tracer | None = None


def get_tracer() -> Tracer:
    """The process-wide default tracer (used when no explicit one is given)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = Tracer()
        return _DEFAULT


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide default tracer (tests, embedders)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = tracer
    return tracer


def trace(name: str, **attrs: Any):
    """``with trace("predict", batch=8):`` — span on the default tracer."""
    return get_tracer().span(name, **attrs)
