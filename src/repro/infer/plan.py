"""Frozen inference plans: the compiled fast path behind the autograd models.

An :class:`InferencePlan` is a trained DeepSets model exported to a flat
recipe of plain-numpy ops — no :class:`~repro.nn.tensor.Tensor` graph
nodes, no grad-mode checks, no per-layer Python modules.  The forward pass
for a batch of sets collapses to:

1. **table gather** — for the LSM (and small-universe CLSM) the whole
   ``phi(embed(x))`` prefix is *folded at freeze time* into one per-element
   table, so inference reads one row per element;
2. **decompose + gather + fuse** — for large-universe CLSM the Algorithm-1
   divisor decomposition runs vectorized, the per-position sub-embedding
   rows are gathered and concatenated, and the fused ``phi`` stack runs as
   contiguous BLAS calls;
3. **segment pooling** — small-fanout batches pool through a padded
   gather plus one mask-weighted ``einsum`` contraction (per-segment
   ``reduceat`` slicing costs ~0.3us per set, which dominates big
   batches); max pooling and very ragged batches fall back to the same
   ``np.add.reduceat`` reduction the autograd
   :func:`repro.nn.functional.segment_sum` uses, including its
   empty-segment fixups;
4. **rho** — the output MLP as a handful of ``np.matmul`` calls into
   reused scratch buffers.

Plans come in three weight variants: ``float64`` (bit-faithful to the
autograd weights), ``float32`` (the serving default), and ``int8``
(per-tensor scale/zero-point affine quantization; embedding/folded tables
stay int8 in memory and are dequantized per gathered row, small MLP
matrices are dequantized once onto the int8 grid, biases stay in the
compute dtype).  The accuracy gates that decide whether a quantized
variant may be published live in :mod:`repro.infer.freeze`.

Thread safety: scratch buffers are thread-local, so one plan instance can
serve concurrent callers; the hit/fallback counters are lock-protected.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Iterable, Sequence

import numpy as np

from .metrics import record_fallback, record_hit

__all__ = ["InferencePlan", "PlanSet", "PlanError"]

#: Weight-variant name -> the dtype inference computes in.
COMPUTE_DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    "int8": np.float32,
}

#: Weight bits per variant (the compression paper's x-axis).
VARIANT_BITS = {"float64": 64, "float32": 32, "int8": 8}

_SUPPORTED_ACTIVATIONS = ("relu", "sigmoid", "tanh", "identity",
                          "leaky_relu", "softplus")


class PlanError(RuntimeError):
    """A plan could not be constructed, serialized, or executed."""


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    # Mirrors repro.nn.functional.sigmoid's piecewise form exactly.
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def _apply_activation(layer: tuple, x: np.ndarray) -> np.ndarray:
    name = layer[0]
    if name == "identity":
        return x
    if name == "relu":
        np.maximum(x, 0.0, out=x)
        return x
    if name == "tanh":
        np.tanh(x, out=x)
        return x
    if name == "sigmoid":
        x[...] = _stable_sigmoid(x)
        return x
    if name == "leaky_relu":
        slope = layer[1]
        np.multiply(x, np.where(x > 0, 1.0, slope).astype(x.dtype), out=x)
        return x
    if name == "softplus":
        x[...] = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
        return x
    raise PlanError(f"unsupported activation {name!r} in frozen plan")


class _Arena:
    """Growable per-thread scratch buffers, keyed by pipeline stage."""

    def __init__(self):
        self._buffers: dict[Any, np.ndarray] = {}

    def take(self, key: Any, rows: int, cols: int, dtype) -> np.ndarray:
        buffer = self._buffers.get(key)
        if (
            buffer is None
            or buffer.shape[0] < rows
            or buffer.shape[1] != cols
            or buffer.dtype != dtype
        ):
            capacity = max(rows, 64)
            buffer = np.empty((capacity, cols), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:rows]


def model_signature(model) -> tuple[str, int]:
    """Cheap identity of a model's architecture: class name + weight count."""
    return (type(model).__name__, int(sum(p.data.size for p in model.parameters())))


class InferencePlan:
    """One frozen weight variant of one trained DeepSets model.

    Call the plan like ``model.predict``: ``plan(sets)`` takes a sequence
    of non-empty element-id collections and returns a float64 array of
    scaled model outputs.  Out-of-vocabulary ids raise ``IndexError`` with
    the same contract as :class:`repro.nn.layers.Embedding`; empty sets
    raise ``ValueError`` like :meth:`SetBatch.from_sets` — frozen and
    autograd paths fail identically so guarded facades need no special
    cases.
    """

    SCHEMA_VERSION = 1

    def __init__(
        self,
        *,
        kind: str,
        dtype_name: str,
        pooling: str,
        rho_layers: list[tuple],
        vocab_size: int,
        weights_version: int,
        signature: tuple[str, int],
        table: np.ndarray | None = None,
        table_qparams: tuple[float, int] | None = None,
        tables: list[np.ndarray] | None = None,
        tables_qparams: list[tuple[float, int]] | None = None,
        ns: int | None = None,
        divisor: int | None = None,
        phi_layers: list[tuple] | None = None,
        structure_kind: str = "model",
        meta: dict | None = None,
    ):
        if kind not in ("folded", "clsm"):
            raise PlanError(f"unknown plan kind {kind!r}")
        if dtype_name not in COMPUTE_DTYPES:
            raise PlanError(f"unknown plan dtype {dtype_name!r}")
        if pooling not in ("sum", "mean", "max"):
            raise PlanError(f"unknown pooling {pooling!r}")
        self.kind = kind
        self.dtype_name = dtype_name
        self.pooling = pooling
        self.rho_layers = rho_layers
        self.vocab_size = int(vocab_size)
        self.weights_version = int(weights_version)
        self.signature = (str(signature[0]), int(signature[1]))
        self.table = table
        self.table_qparams = table_qparams
        self.tables = tables
        self.tables_qparams = tables_qparams
        self.ns = ns
        self.divisor = divisor
        self.phi_layers = phi_layers or []
        self.structure_kind = structure_kind
        self.meta = dict(meta or {})
        self.hits = 0
        self.fallbacks = 0
        self._counter_lock = threading.Lock()
        self._local = threading.local()

    # -- plumbing -------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_local", None)
        state.pop("_counter_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._counter_lock = threading.Lock()
        self._local = threading.local()

    @property
    def compute_dtype(self):
        return COMPUTE_DTYPES[self.dtype_name]

    @property
    def bits(self) -> int:
        return VARIANT_BITS[self.dtype_name]

    def _arena(self) -> _Arena:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = self._local.arena = _Arena()
        return arena

    def size_bytes(self) -> int:
        """In-memory weight footprint (the bits-vs-accuracy x-axis)."""
        total = 0
        if self.table is not None:
            total += self.table.nbytes
        for t in self.tables or []:
            total += t.nbytes
        for layers in (self.phi_layers, self.rho_layers):
            for layer in layers:
                if layer[0] == "linear":
                    total += layer[1].nbytes
                    if layer[2] is not None:
                        total += layer[2].nbytes
        return total

    # -- staleness + routing ---------------------------------------------------

    def matches(self, model) -> bool:
        """True when ``model`` still carries the weights this plan froze."""
        try:
            return (
                int(model.weights_version()) == self.weights_version
                and model_signature(model) == self.signature
            )
        except Exception:
            return False

    def record_hit(self) -> None:
        with self._counter_lock:
            self.hits += 1
        record_hit(self.structure_kind, self.dtype_name)

    def record_fallback(self, reason: str) -> None:
        with self._counter_lock:
            self.fallbacks += 1
        record_fallback(self.structure_kind, reason)

    def predict_scaled(self, model, sets: Sequence[Iterable[int]]):
        """The structure-facing entry point: plan output, or ``None``.

        Returns ``None`` when the plan is stale for ``model`` (weights
        retrained or reloaded since the freeze) — the caller then falls
        back to the autograd path transparently.  Query-shape errors
        (empty sets, out-of-vocabulary ids) propagate exactly like the
        autograd path's, so fallback never masks a caller bug.
        """
        if model is not None and not self.matches(model):
            self.record_fallback("stale")
            return None
        out = self(sets)
        self.record_hit()
        return out

    # -- execution -------------------------------------------------------------

    def __call__(self, sets: Sequence[Iterable[int]]) -> np.ndarray:
        try:
            # Fast path: sized sequences (the canonical tuples every
            # structure passes) flatten in two C-level sweeps instead of
            # one ndarray construction per set.
            lengths = np.fromiter(map(len, sets), dtype=np.int64,
                                  count=len(sets))
        except TypeError:
            sets = [tuple(s) for s in sets]
            lengths = np.fromiter(map(len, sets), dtype=np.int64,
                                  count=len(sets))
        num_sets = len(lengths)
        if num_sets and int(lengths.min()) == 0:
            raise ValueError("sets must be non-empty")
        total = int(lengths.sum())
        elements = np.fromiter(
            itertools.chain.from_iterable(sets), dtype=np.int64, count=total
        )
        return self._forward(elements, lengths, num_sets)

    def forward_flat(
        self, elements: np.ndarray, segment_ids: np.ndarray, num_sets: int
    ) -> np.ndarray:
        """Forward a flattened batch; returns float64 shape ``(num_sets,)``.

        ``segment_ids`` must be sorted ascending (the :class:`SetBatch`
        layout); lengths are recovered by ``bincount``.
        """
        lengths = np.bincount(segment_ids, minlength=num_sets).astype(np.int64)
        return self._forward(elements, lengths, num_sets)

    def _forward(
        self, elements: np.ndarray, lengths: np.ndarray, num_sets: int
    ) -> np.ndarray:
        if elements.size and (
            elements.min() < 0 or elements.max() >= self.vocab_size
        ):
            self._raise_oov(elements)
        arena = self._arena()
        if self.kind == "folded":
            if num_sets and self.pooling != "max":
                max_len = int(lengths.max())
                if 0 < max_len <= self._PAD_POOL_MAX_LEN:
                    pooled = self._pool_folded_padded(
                        elements, lengths, num_sets, max_len, arena
                    )
                    out = self._run_layers(self.rho_layers, pooled, arena, "rho")
                    return np.asarray(out, dtype=np.float64).reshape(num_sets)
            transformed = self._gather_table(
                self.table, self.table_qparams, elements, arena, "fold"
            )
        else:
            transformed = self._clsm_transform(elements, arena)
        pooled = self._pool(transformed, lengths, num_sets, arena)
        out = self._run_layers(self.rho_layers, pooled, arena, "rho")
        return np.asarray(out, dtype=np.float64).reshape(num_sets)

    def _pool_folded_padded(
        self, elements, lengths, num_sets, max_len, arena
    ) -> np.ndarray:
        # Fused gather+pool for folded plans: pad the *element ids* per set
        # and run one table gather straight into the (sets, max_len, dim)
        # pooling view — the flat per-element gather disappears entirely.
        starts = np.cumsum(lengths) - lengths
        offsets = np.arange(max_len)
        idx = starts[:, None] + offsets
        mask = (offsets < lengths[:, None]).astype(self.compute_dtype)
        np.minimum(idx, len(elements) - 1, out=idx)  # pad slots stay in-bounds
        rows = self._gather_table(
            self.table, self.table_qparams, elements[idx.reshape(-1)],
            arena, "fold",
        )
        gathered = rows.reshape(num_sets, max_len, rows.shape[1])
        out = arena.take(("pool",), num_sets, rows.shape[1], rows.dtype)
        np.einsum("slk,sl->sk", gathered, mask, out=out)
        if self.pooling == "mean":
            out /= np.maximum(lengths, 1).astype(rows.dtype)[:, None]
        return out

    def _raise_oov(self, elements: np.ndarray) -> None:
        ns = self.ns or 1
        if ns > 1:
            # The autograd CLSM fails inside the quotient-position
            # embedding with decomposed sub-ids (every lower position is a
            # remainder mod divisor and always in range); mirror its
            # message so the frozen path is indistinguishable to callers.
            shift = self.divisor ** (ns - 1)
            quotient = elements // shift
            vocab = self.vocab_size // shift
            raise IndexError(
                f"embedding index out of range [0, {vocab}): "
                f"[{quotient.min()}, {quotient.max()}]"
            )
        raise IndexError(
            f"embedding index out of range [0, {self.vocab_size}): "
            f"[{elements.min()}, {elements.max()}]"
        )

    def _gather_table(self, table, qparams, indices, arena, key) -> np.ndarray:
        if qparams is None:
            out = arena.take((key, "rows"), len(indices), table.shape[1],
                             table.dtype)
            np.take(table, indices, axis=0, out=out)
            return out
        scale, zero = qparams
        rows = table[indices]
        out = arena.take((key, "deq"), rows.shape[0], rows.shape[1],
                         self.compute_dtype)
        np.multiply(rows, self.compute_dtype(scale), out=out)
        out -= self.compute_dtype(scale * zero)
        return out

    def _clsm_transform(self, elements: np.ndarray, arena: _Arena) -> np.ndarray:
        ns, divisor = self.ns, self.divisor
        n = len(elements)
        width = sum(t.shape[1] for t in self.tables)
        concat = arena.take(("clsm", "concat"), n, width, self.compute_dtype)
        current = elements.copy()
        offset = 0
        for position, table in enumerate(self.tables):
            if position < ns - 1:
                sub = current % divisor
                current //= divisor
            else:
                sub = current
            qparams = self.tables_qparams[position] if self.tables_qparams else None
            dim = table.shape[1]
            rows = table[sub]
            if qparams is None:
                concat[:, offset:offset + dim] = rows
            else:
                scale, zero = qparams
                block = concat[:, offset:offset + dim]
                np.multiply(rows, self.compute_dtype(scale), out=block,
                            casting="unsafe")
                block -= self.compute_dtype(scale * zero)
            offset += dim
        return self._run_layers(self.phi_layers, concat, arena, "phi")

    def _run_layers(self, layers, x: np.ndarray, arena: _Arena, tag: str):
        for index, layer in enumerate(layers):
            if layer[0] == "linear":
                _, weight, bias = layer
                out = arena.take((tag, index), x.shape[0], weight.shape[1],
                                 weight.dtype)
                np.matmul(x, weight, out=out)
                if bias is not None:
                    out += bias
                x = out
            else:
                x = _apply_activation(layer, x)
        return x

    # Above this per-set fanout the padded pooling buffer stops paying for
    # itself (padding waste grows with the largest set in the batch).
    _PAD_POOL_MAX_LEN = 16

    def _pool(self, x, lengths, num_segments, arena) -> np.ndarray:
        out = arena.take(("pool",), num_segments, x.shape[1], x.dtype)
        if num_segments == 0:
            return out
        max_len = int(lengths.max())
        if self.pooling != "max" and 0 < max_len <= self._PAD_POOL_MAX_LEN:
            # Padded gather + mask-weighted einsum: one contraction over a
            # (sets, max_len, dim) view instead of per-segment reduceat
            # slices, whose ~0.3us/segment overhead dominated large batches.
            starts = np.cumsum(lengths) - lengths
            offsets = np.arange(max_len)
            idx = starts[:, None] + offsets
            mask = (offsets < lengths[:, None]).astype(x.dtype)
            np.minimum(idx, max(len(x) - 1, 0), out=idx)  # pad rows in-bounds
            flat = arena.take(("pool", "pad"), num_segments * max_len,
                              x.shape[1], x.dtype)
            np.take(x, idx.reshape(-1), axis=0, out=flat)
            gathered = flat.reshape(num_segments, max_len, x.shape[1])
            np.einsum("slk,sl->sk", gathered, mask, out=out)
            if self.pooling == "mean":
                out /= np.maximum(lengths, 1).astype(x.dtype)[:, None]
            return out
        # Mirrors repro.nn.functional.segment_{sum,mean,max} including the
        # empty-segment zero fixups, so frozen and autograd paths agree on
        # every edge batch (direct forward_flat callers may pass gaps).
        out[:] = 0.0
        if len(x):
            present = lengths > 0
            starts = (np.cumsum(lengths) - lengths)[present]
            if self.pooling == "max":
                reduced = np.maximum.reduceat(x, starts, axis=0)
            else:
                reduced = np.add.reduceat(x, starts, axis=0)
            out[present] = reduced
            if self.pooling == "mean":
                out /= np.maximum(lengths, 1).astype(x.dtype)[:, None]
        return out

    # -- serialization ----------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flatten to named arrays (for ``save_state`` embedding)."""
        arrays: dict[str, np.ndarray] = {}
        meta = {
            "schema": self.SCHEMA_VERSION,
            "kind": self.kind,
            "dtype": self.dtype_name,
            "pooling": self.pooling,
            "vocab_size": self.vocab_size,
            "weights_version": self.weights_version,
            "signature": list(self.signature),
            "structure_kind": self.structure_kind,
            "ns": self.ns,
            "divisor": self.divisor,
            "table_qparams": list(self.table_qparams) if self.table_qparams else None,
            "tables_qparams": [list(q) for q in self.tables_qparams]
            if self.tables_qparams else None,
            "phi_acts": _layer_recipe(self.phi_layers),
            "rho_acts": _layer_recipe(self.rho_layers),
            "num_tables": len(self.tables) if self.tables is not None else None,
            "meta": self.meta,
        }
        arrays["meta"] = _json_to_array(meta)
        if self.table is not None:
            arrays["table"] = self.table
        for position, table in enumerate(self.tables or []):
            arrays[f"tables.{position}"] = table
        for tag, layers in (("phi", self.phi_layers), ("rho", self.rho_layers)):
            for index, layer in enumerate(layers):
                if layer[0] == "linear":
                    arrays[f"{tag}.{index}.weight"] = layer[1]
                    if layer[2] is not None:
                        arrays[f"{tag}.{index}.bias"] = layer[2]
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "InferencePlan":
        try:
            meta = _json_from_array(arrays["meta"])
        except KeyError:
            raise PlanError("plan archive is missing its meta entry") from None
        if meta.get("schema") != cls.SCHEMA_VERSION:
            raise PlanError(
                f"unsupported plan schema {meta.get('schema')!r}"
            )
        num_tables = meta.get("num_tables")
        tables = None
        if num_tables is not None:
            tables = [np.asarray(arrays[f"tables.{i}"]) for i in range(num_tables)]
        phi_layers = _layers_from_recipe(meta["phi_acts"], arrays, "phi")
        rho_layers = _layers_from_recipe(meta["rho_acts"], arrays, "rho")
        return cls(
            kind=meta["kind"],
            dtype_name=meta["dtype"],
            pooling=meta["pooling"],
            rho_layers=rho_layers,
            vocab_size=meta["vocab_size"],
            weights_version=meta["weights_version"],
            signature=tuple(meta["signature"]),
            table=np.asarray(arrays["table"]) if "table" in arrays else None,
            table_qparams=tuple(meta["table_qparams"])
            if meta.get("table_qparams") else None,
            tables=tables,
            tables_qparams=[tuple(q) for q in meta["tables_qparams"]]
            if meta.get("tables_qparams") else None,
            ns=meta.get("ns"),
            divisor=meta.get("divisor"),
            phi_layers=phi_layers,
            structure_kind=meta.get("structure_kind", "model"),
            meta=meta.get("meta") or {},
        )

    def __repr__(self) -> str:
        return (
            f"InferencePlan(kind={self.kind!r}, dtype={self.dtype_name!r}, "
            f"pooling={self.pooling!r}, vocab={self.vocab_size}, "
            f"bytes={self.size_bytes()})"
        )


def _layer_recipe(layers: list[tuple]) -> list[list]:
    recipe = []
    for layer in layers:
        if layer[0] == "linear":
            recipe.append(["linear", layer[2] is not None])
        elif layer[0] == "leaky_relu":
            recipe.append(["leaky_relu", layer[1]])
        else:
            recipe.append([layer[0]])
    return recipe


def _layers_from_recipe(recipe, arrays, tag) -> list[tuple]:
    layers: list[tuple] = []
    for index, entry in enumerate(recipe):
        name = entry[0]
        if name == "linear":
            weight = np.asarray(arrays[f"{tag}.{index}.weight"])
            bias = (
                np.asarray(arrays[f"{tag}.{index}.bias"]) if entry[1] else None
            )
            layers.append(("linear", weight, bias))
        elif name == "leaky_relu":
            layers.append(("leaky_relu", float(entry[1])))
        elif name in _SUPPORTED_ACTIVATIONS:
            layers.append((name,))
        else:
            raise PlanError(f"unsupported layer {name!r} in plan archive")
    return layers


def _json_to_array(payload: dict) -> np.ndarray:
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return np.frombuffer(encoded, dtype=np.uint8).copy()


def _json_from_array(array: np.ndarray) -> dict:
    try:
        return json.loads(np.asarray(array, dtype=np.uint8).tobytes().decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise PlanError(f"undecodable plan metadata ({error})") from error


class PlanSet:
    """The published weight variants of one frozen model.

    ``variants`` maps dtype name -> :class:`InferencePlan`; ``active``
    names the variant a structure serves through.  ``reports`` carries the
    per-variant gate metrics (accuracy deltas, sizes, rejection reasons)
    for observability and the bench reports.
    """

    def __init__(
        self,
        variants: dict[str, InferencePlan],
        active: str,
        reports: dict[str, dict] | None = None,
    ):
        if active not in variants:
            raise PlanError(
                f"active variant {active!r} not among {sorted(variants)}"
            )
        self.variants = dict(variants)
        self.active = active
        self.reports = dict(reports or {})

    @property
    def active_plan(self) -> InferencePlan:
        return self.variants[self.active]

    def rebind(self, model) -> "PlanSet":
        """Re-anchor staleness tracking to ``model``'s current weights.

        Used after :func:`repro.nn.serialize.load_state` re-materializes a
        model from the same archive the plans were stored in: loading bumps
        the model's weights version, but the archive's checksum guarantees
        weights and plans still belong together.
        """
        version = int(model.weights_version())
        signature = model_signature(model)
        for plan in self.variants.values():
            plan.weights_version = version
            plan.signature = signature
        return self

    def to_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            "meta": _json_to_array(
                {
                    "schema": InferencePlan.SCHEMA_VERSION,
                    "active": self.active,
                    "variants": sorted(self.variants),
                    "reports": self.reports,
                }
            )
        }
        for name, plan in self.variants.items():
            for key, array in plan.to_arrays().items():
                arrays[f"{name}/{key}"] = array
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PlanSet":
        try:
            meta = _json_from_array(arrays["meta"])
        except KeyError:
            raise PlanError("plan-set archive is missing its meta entry") from None
        variants = {}
        for name in meta.get("variants", []):
            prefix = f"{name}/"
            sub = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            if not sub:
                raise PlanError(f"plan variant {name!r} has no arrays")
            variants[name] = InferencePlan.from_arrays(sub)
        return cls(variants, meta["active"], meta.get("reports"))

    def __repr__(self) -> str:
        return f"PlanSet(active={self.active!r}, variants={sorted(self.variants)})"
