"""Process-wide ``repro_infer_*`` metrics.

Plan routing happens inside the core structures, which do not own a
metrics registry; the counters therefore live on the process-wide
:func:`repro.obs.global_registry` (labelled by structure kind), while
each :class:`~repro.infer.plan.InferencePlan` instance additionally keeps
its own hit/fallback totals so a :class:`~repro.serve.SetServer` can
expose per-snapshot gauges for whatever structure it currently serves.
"""

from __future__ import annotations

from ..obs.metrics import global_registry

__all__ = ["record_hit", "record_fallback", "infer_registry"]

_REGISTRY = global_registry()

_HITS = _REGISTRY.counter(
    "repro_infer_plan_hits_total",
    "Batches answered through a frozen inference plan",
    labelnames=("kind", "dtype"),
)

_FALLBACKS = _REGISTRY.counter(
    "repro_infer_plan_fallbacks_total",
    "Plan-routed calls that fell back to the autograd path",
    labelnames=("kind", "reason"),
)


def infer_registry():
    """The registry carrying the process-wide ``repro_infer_*`` counters."""
    return _REGISTRY


def record_hit(kind: str, dtype: str) -> None:
    _HITS.labels(kind=kind, dtype=dtype).inc()


def record_fallback(kind: str, reason: str) -> None:
    _FALLBACKS.labels(kind=kind, reason=reason).inc()
