"""Zero-copy plan publication through ``multiprocessing.shared_memory``.

A frozen :class:`~repro.infer.plan.InferencePlan` is a dict of plain numpy
arrays (:meth:`to_arrays`), which makes cross-process publication cheap:
the arrays are packed once into one named shared-memory segment, and every
worker process *attaches* the segment and rebuilds the plan over zero-copy
views of the same physical pages.  A snapshot swap then ships only the
segment *names* — the weights themselves are never re-serialized, re-sent,
or duplicated per worker.

Layout of a segment (everything little-endian):

========  =======================================================
offset    content
========  =======================================================
0         ``b"RPSHM1"`` magic (6 bytes)
6         manifest length ``L`` as ``<Q`` (8 bytes)
14        manifest: JSON array of ``[name, dtype, shape, offset,
          nbytes]`` entries, offsets relative to the payload base
14 + L    payload: the arrays' raw bytes, each 64-byte aligned
========  =======================================================

Attach safety: CPython's ``resource_tracker`` assumes every process that
opens a segment co-owns it and unlinks "leaked" segments at process exit.
A worker that merely *attached* a published plan must not tear it down
when the worker dies (crash recovery respawns workers while the
generation keeps serving), so :func:`attach_segment` unregisters the
attached segment from the tracker — exactly one process (the publisher,
via :class:`~repro.serve.registry.PlanRegistry`) owns unlink.
"""

from __future__ import annotations

import atexit
import gc
import json
import struct
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from .plan import InferencePlan, PlanError

__all__ = [
    "ShmSegment",
    "attach_plan",
    "attach_segment",
    "create_segment",
    "pack_arrays_size",
    "publish_plan",
]

_MAGIC = b"RPSHM1"
_HEADER = struct.Struct("<Q")
_ALIGN = 64

#: Mappings whose unmap was refused (a live view still exported the
#: buffer).  Holding them here keeps ``SharedMemory.__del__`` from firing
#: the same ``BufferError`` as an unraisable exception; the close is
#: retried on the next segment close and at interpreter exit, by which
#: point the views are collectible.
_deferred_close: list[shared_memory.SharedMemory] = []


def _retry_deferred_closes() -> None:
    if not _deferred_close:
        return
    gc.collect()
    for shm in _deferred_close[:]:
        try:
            shm.close()
        except BufferError:
            continue
        _deferred_close.remove(shm)


atexit.register(_retry_deferred_closes)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _manifest(arrays: dict[str, np.ndarray]) -> tuple[bytes, dict[str, int], int]:
    """The JSON manifest plus per-array payload offsets and payload size."""
    entries = []
    offsets: dict[str, int] = {}
    cursor = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        if array.dtype.hasobject:
            # Rejected before any segment exists: a failure mid-create
            # would leak a half-written name.
            raise PlanError(
                f"array {name!r} has object dtype; only plain numeric "
                f"arrays can be shared"
            )
        cursor = _aligned(cursor)
        offsets[name] = cursor
        entries.append(
            [name, array.dtype.str, list(array.shape), cursor, array.nbytes]
        )
        cursor += array.nbytes
    blob = json.dumps(entries, sort_keys=True).encode("utf-8")
    return blob, offsets, cursor


def pack_arrays_size(arrays: dict[str, np.ndarray]) -> int:
    """Bytes a segment holding ``arrays`` needs."""
    blob, _offsets, payload = _manifest(arrays)
    return len(_MAGIC) + _HEADER.size + len(blob) + _ALIGN + payload


class ShmSegment:
    """One named shared-memory segment holding a dict of numpy arrays.

    Created by the publisher (``owner=True``; only the owner may
    :meth:`unlink`) or attached by a reader (``owner=False``; the reader
    only ever :meth:`close`\\ s its mapping).  ``arrays`` are zero-copy
    read-only views into the shared pages — they stay valid exactly as
    long as this segment is open.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self.owner = owner
        self._closed = False
        self._unlinked = False
        self.arrays = self._unpack()

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self._shm.size

    @property
    def closed(self) -> bool:
        return self._closed

    def _unpack(self) -> dict[str, np.ndarray]:
        buffer = self._shm.buf
        prefix = len(_MAGIC)
        if bytes(buffer[:prefix]) != _MAGIC:
            raise PlanError(
                f"segment {self.name!r} does not hold packed plan arrays"
            )
        (length,) = _HEADER.unpack_from(buffer, prefix)
        base = prefix + _HEADER.size
        try:
            entries = json.loads(bytes(buffer[base:base + length]).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise PlanError(
                f"undecodable manifest in segment {self.name!r} ({error})"
            ) from error
        payload_base = _aligned(base + length)
        arrays: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset, nbytes in entries:
            start = payload_base + offset
            view = np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=nbytes // np.dtype(dtype).itemsize,
                offset=start,
            ).reshape(shape)
            view.flags.writeable = False
            arrays[name] = view
        return arrays

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice).

        Views handed out through :attr:`arrays` must not be used after
        close; they are dropped here so a stale reference fails loudly
        instead of reading unmapped pages.  If some view is still
        referenced elsewhere the unmap is deferred to its collection
        (``mmap`` refuses to close under exported buffers) — correctness
        is unaffected because unlinked POSIX segments live until the last
        mapping drops.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        _retry_deferred_closes()
        try:
            self._shm.close()
        except BufferError:
            gc.collect()  # drop freshly unreachable views, then retry
            try:
                self._shm.close()
            except BufferError:
                _deferred_close.append(self._shm)

    def unlink(self) -> None:
        """Remove the segment name (owner only; mappings stay valid)."""
        if not self.owner:
            raise PlanError(
                f"refusing to unlink segment {self.name!r}: not the owner"
            )
        if self._unlinked:
            return
        self._unlinked = True
        self._shm.unlink()

    def __enter__(self) -> "ShmSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "reader"
        return f"ShmSegment({self.name!r}, {role}, {self.size} bytes)"


def create_segment(name: str, arrays: dict[str, np.ndarray]) -> ShmSegment:
    """Pack ``arrays`` into a new named segment (the publisher side)."""
    blob, offsets, payload = _manifest(arrays)
    prefix = len(_MAGIC) + _HEADER.size
    payload_base = _aligned(prefix + len(blob))
    size = max(payload_base + payload, 1)
    shm = shared_memory.SharedMemory(create=True, size=size, name=name)
    buffer = shm.buf
    buffer[: len(_MAGIC)] = _MAGIC
    _HEADER.pack_into(buffer, len(_MAGIC), len(blob))
    buffer[prefix:prefix + len(blob)] = blob
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        start = payload_base + offsets[key]
        buffer[start:start + array.nbytes] = array.tobytes()
    return ShmSegment(shm, owner=True)


def attach_segment(name: str, untrack: bool = True) -> ShmSegment:
    """Attach an existing segment as a reader (never unlinks it).

    With ``untrack=True`` the attach is unregistered from this process's
    ``resource_tracker`` so a reader (or its crash) can never destroy a
    segment it does not own — see the module docstring.  Pass
    ``untrack=False`` when the reader was *forked* from the publisher:
    the two processes then share one tracker, whose per-name cache the
    publisher already maintains — unregistering from the reader would
    cancel the publisher's entry (the tracker cache is a set, so the
    reader's duplicate registration is already a no-op).
    """
    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass  # tracker bookkeeping is best-effort; ownership stays correct
    return ShmSegment(shm, owner=False)


def publish_plan(name: str, plan: InferencePlan) -> ShmSegment:
    """Publish one frozen plan into a named segment."""
    return create_segment(name, plan.to_arrays())


def attach_plan(
    segment: ShmSegment | str, untrack: bool = True
) -> tuple[ShmSegment, InferencePlan]:
    """Rebuild the plan published in ``segment`` over zero-copy views.

    Returns the (open) segment together with the plan; the caller keeps
    the segment open for as long as it serves through the plan.
    """
    if isinstance(segment, str):
        segment = attach_segment(segment, untrack=untrack)
    plan = InferencePlan.from_arrays(segment.arrays)
    return segment, plan


def shm_dir_names() -> list[str] | None:
    """Names currently linked under ``/dev/shm`` (None when unsupported).

    The hygiene tests enumerate this to prove that shutdown and
    generation retirement leak no segments.
    """
    import os

    if not os.path.isdir("/dev/shm"):
        return None
    return sorted(os.listdir("/dev/shm"))
