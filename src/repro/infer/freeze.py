"""Freezing trained models into plans, and the accuracy gates.

:func:`freeze` exports one trained DeepSets model (LSM or CLSM) into the
requested weight variants.  Where the element universe is small enough
(``fold_limit``), the entire ``phi(embed(decompose(x)))`` prefix is folded
into a single per-element table at freeze time — inference then gathers
one row per element.  Larger CLSM universes keep the per-position
sub-tables and run the fused decompose → gather → concat → ``phi``
pipeline, preserving the compression paper's memory advantage.

:func:`freeze_structure` applies this to a built structure (raw, guarded,
or sharded), runs every variant through its **accuracy gate** against the
autograd float64 reference on a seeded probe workload, attaches the
chosen serving variant, and returns a :class:`FreezeReport`.  A variant
whose q-error (cardinality/index) or decision behaviour (Bloom: flipped
decisions, FPR increase, new false negatives on the trained positives)
degrades beyond the configured bound is refused publication.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Any, Iterable, Sequence

import numpy as np

from ..nn.layers import (
    Identity,
    LeakyReLU,
    Linear,
    MLP,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
)
from .plan import InferencePlan, PlanSet, model_signature
from .quantize import dequantize, quantize_per_tensor

__all__ = [
    "DEFAULT_FOLD_LIMIT",
    "FreezeError",
    "FreezeReport",
    "FrozenVariantRejected",
    "GateConfig",
    "freeze",
    "freeze_structure",
    "refreeze_like",
    "attached_plans",
]

#: Largest folded-table row count; beyond it CLSM plans stay unfolded so
#: freezing never undoes the compression the model exists to provide.
DEFAULT_FOLD_LIMIT = 1 << 16

DEFAULT_DTYPES = ("float64", "float32", "int8")


class FreezeError(RuntimeError):
    """A model could not be exported into a plan."""


class FrozenVariantRejected(FreezeError):
    """A weight variant failed its accuracy gate and was not published."""

    def __init__(self, dtype: str, reason: str):
        super().__init__(f"frozen {dtype} variant rejected: {reason}")
        self.dtype = dtype
        self.reason = reason


@dataclass(frozen=True)
class GateConfig:
    """Accuracy-delta bounds a quantized variant must satisfy to publish.

    ``max_mean_qerror`` bounds the mean q-error of variant outputs against
    the float64 reference on the probe workload (cardinality estimates and
    index positions).  The Bloom gates bound the fraction of probe
    decisions that flip at the threshold, the false-positive-rate increase
    on probe negatives, and — hard invariant — the number of *new* false
    negatives over the trained positives (default zero: quantization may
    never cost the no-false-negative guarantee a backup filter cannot
    cover).
    """

    max_mean_qerror: float = 1.05
    max_flip_fraction: float = 0.02
    max_fpr_delta: float = 0.02
    max_new_false_negatives: int = 0
    probe_queries: int = 256
    probe_seed: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class FreezeReport:
    """What :func:`freeze_structure` froze, accepted, and rejected."""

    kind: str
    parts: list[dict]

    @property
    def plansets(self) -> list[PlanSet]:
        return [part["plans"] for part in self.parts]

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "parts": [
                {
                    "active": part["plans"].active,
                    "variants": sorted(part["plans"].variants),
                    "reports": part["reports"],
                }
                for part in self.parts
            ],
        }


# -- model walking -------------------------------------------------------------


def _mlp_layers(module) -> list[tuple]:
    """Flatten an MLP/Identity module stack into plan layer tuples."""
    if module is None or isinstance(module, Identity):
        return []
    if not isinstance(module, Sequential):
        raise FreezeError(
            f"cannot freeze a {type(module).__name__}; expected MLP/Identity"
        )
    layers: list[tuple] = []
    for layer in module:
        if isinstance(layer, Linear):
            bias = layer.bias.data.copy() if layer.bias is not None else None
            layers.append(("linear", layer.weight.data.copy(), bias))
        elif isinstance(layer, ReLU):
            layers.append(("relu",))
        elif isinstance(layer, Sigmoid):
            layers.append(("sigmoid",))
        elif isinstance(layer, Tanh):
            layers.append(("tanh",))
        elif isinstance(layer, Identity):
            layers.append(("identity",))
        elif isinstance(layer, LeakyReLU):
            layers.append(("leaky_relu", float(layer.negative_slope)))
        elif isinstance(layer, Softplus):
            layers.append(("softplus",))
        else:
            raise FreezeError(
                f"cannot freeze layer {type(layer).__name__}; "
                "no plan equivalent"
            )
    return layers


def _run_layers_f64(layers: list[tuple], x: np.ndarray) -> np.ndarray:
    from .plan import _apply_activation

    for layer in layers:
        if layer[0] == "linear":
            x = x @ layer[1]
            if layer[2] is not None:
                x = x + layer[2]
        else:
            x = _apply_activation(layer, x.copy())
    return x


def _model_anatomy(model) -> dict:
    """Extract the freeze-relevant pieces of an LSM or CLSM model."""
    rho_layers = _mlp_layers(model.rho)
    if hasattr(model, "compressor"):
        compressor = model.compressor
        vocabs = compressor.vocab_sizes()
        # Every id below this cap decomposes into in-range sub-elements,
        # and every id at or above it overflows the final quotient table —
        # exactly the acceptance set of the autograd forward.
        cap = compressor.divisor ** (compressor.ns - 1) * vocabs[-1]
        return {
            "ns": compressor.ns,
            "divisor": compressor.divisor,
            "cap": int(cap),
            "tables": [e.weight.data.copy() for e in model.embeddings],
            "phi_layers": _mlp_layers(model.phi),
            "rho_layers": rho_layers,
            "pooling": model.pooling,
        }
    return {
        "ns": 1,
        "divisor": 2,
        "cap": int(model.vocab_size),
        "tables": [model.embedding.weight.data.copy()],
        "phi_layers": _mlp_layers(model.phi),
        "rho_layers": rho_layers,
        "pooling": model.pooling,
    }


def _fold_table(anatomy: dict) -> np.ndarray:
    """Precompute ``phi(concat(sub_embeds(decompose(id))))`` for every id."""
    ids = np.arange(anatomy["cap"], dtype=np.int64)
    ns, divisor = anatomy["ns"], anatomy["divisor"]
    pieces = []
    current = ids.copy()
    for position, table in enumerate(anatomy["tables"]):
        if position < ns - 1:
            sub = current % divisor
            current //= divisor
        else:
            sub = current
        pieces.append(table[sub])
    concat = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=1)
    return np.ascontiguousarray(_run_layers_f64(anatomy["phi_layers"], concat))


def _cast_layers(layers: list[tuple], dtype) -> list[tuple]:
    out = []
    for layer in layers:
        if layer[0] == "linear":
            bias = layer[2].astype(dtype) if layer[2] is not None else None
            out.append(("linear", np.ascontiguousarray(layer[1], dtype=dtype), bias))
        else:
            out.append(layer)
    return out


def _quantize_layers(layers: list[tuple]) -> list[tuple]:
    """Dequantize-once int8: float32 matrices snapped to the int8 grid."""
    out = []
    for layer in layers:
        if layer[0] == "linear":
            q, scale, zero = quantize_per_tensor(layer[1])
            weight = np.ascontiguousarray(dequantize(q, scale, zero, np.float32))
            bias = layer[2].astype(np.float32) if layer[2] is not None else None
            out.append(("linear", weight, bias))
        else:
            out.append(layer)
    return out


def _self_check(plan: InferencePlan, model) -> None:
    """Freeze-time differential check of the float64 plan vs autograd."""
    rng = np.random.default_rng(0)
    universe = plan.vocab_size
    probes = [
        tuple(sorted(set(rng.integers(0, universe, size=int(rng.integers(1, 4))).tolist())))
        for _ in range(8)
    ]
    reference = model.predict(probes)
    fused = plan(probes)
    if not np.allclose(fused, reference, rtol=1e-9, atol=1e-9):
        raise FreezeError(
            "fused float64 plan diverged from the autograd forward "
            f"(max delta {np.max(np.abs(fused - reference)):.3e})"
        )


def freeze(
    model,
    dtypes: Sequence[str] = DEFAULT_DTYPES,
    fold_limit: int = DEFAULT_FOLD_LIMIT,
) -> dict[str, InferencePlan]:
    """Export a trained model into the requested plan variants.

    Returns ``{dtype_name: InferencePlan}``.  The float64 variant is
    differential-checked against the autograd forward at freeze time, so
    a fused-math bug can never ship silently.  No accuracy gating happens
    here — that is :func:`freeze_structure`'s job, where the structure
    semantics (q-error, FPR) are known.
    """
    unknown = [d for d in dtypes if d not in ("float64", "float32", "int8")]
    if unknown:
        raise FreezeError(f"unknown plan dtypes {unknown}")
    anatomy = _model_anatomy(model)
    folded = anatomy["cap"] <= fold_limit
    common = dict(
        pooling=anatomy["pooling"],
        vocab_size=anatomy["cap"],
        ns=anatomy["ns"],
        divisor=anatomy["divisor"],
        weights_version=int(model.weights_version()),
        signature=model_signature(model),
    )
    table64 = _fold_table(anatomy) if folded else None
    plans: dict[str, InferencePlan] = {}
    for name in dtypes:
        if folded:
            plans[name] = _folded_variant(name, table64, anatomy, common)
        else:
            plans[name] = _unfolded_variant(name, anatomy, common)
        plans[name].meta["folded"] = folded
    if "float64" in plans:
        _self_check(plans["float64"], model)
    return plans


def _folded_variant(name, table64, anatomy, common) -> InferencePlan:
    if name == "int8":
        q, scale, zero = quantize_per_tensor(table64)
        return InferencePlan(
            kind="folded",
            dtype_name=name,
            table=q,
            table_qparams=(scale, zero),
            rho_layers=_quantize_layers(_cast_layers(anatomy["rho_layers"], np.float32)),
            **common,
        )
    dtype = np.float64 if name == "float64" else np.float32
    return InferencePlan(
        kind="folded",
        dtype_name=name,
        table=np.ascontiguousarray(table64, dtype=dtype),
        rho_layers=_cast_layers(anatomy["rho_layers"], dtype),
        **common,
    )


def _unfolded_variant(name, anatomy, common) -> InferencePlan:
    shared = dict(kind="clsm", dtype_name=name, **common)
    if name == "int8":
        tables, qparams = [], []
        for table in anatomy["tables"]:
            q, scale, zero = quantize_per_tensor(table)
            tables.append(q)
            qparams.append((scale, zero))
        return InferencePlan(
            tables=tables,
            tables_qparams=qparams,
            phi_layers=_quantize_layers(_cast_layers(anatomy["phi_layers"], np.float32)),
            rho_layers=_quantize_layers(_cast_layers(anatomy["rho_layers"], np.float32)),
            **shared,
        )
    dtype = np.float64 if name == "float64" else np.float32
    return InferencePlan(
        tables=[np.ascontiguousarray(t, dtype=dtype) for t in anatomy["tables"]],
        phi_layers=_cast_layers(anatomy["phi_layers"], dtype),
        rho_layers=_cast_layers(anatomy["rho_layers"], dtype),
        **shared,
    )


# -- structure traversal -------------------------------------------------------


def _unwrap(structure: Any) -> Any:
    """The raw structure behind a guarded facade (duck-typed)."""
    if hasattr(structure, "health") and hasattr(structure, "exact"):
        for attr in ("estimator", "index", "filter"):
            inner = getattr(structure, attr, None)
            if inner is not None:
                return inner
    return structure


def _raw_parts(structure: Any) -> list[Any]:
    """The raw leaf structures: one for unsharded, K for a sharded router."""
    inner = _unwrap(structure)
    parts = getattr(inner, "parts", None)
    if parts is not None:
        return [_unwrap(part) for part in parts]
    return [inner]


def _structure_kind(raw: Any) -> str:
    if hasattr(raw, "threshold") and hasattr(raw, "model"):
        return "bloom"
    if hasattr(raw, "bounds") and hasattr(raw, "model"):
        return "index"
    if hasattr(raw, "scaler") and hasattr(raw, "model"):
        return "cardinality"
    raise FreezeError(
        f"cannot freeze a {type(raw).__name__}: not a learned structure"
    )


def attached_plans(structure: Any) -> list[InferencePlan]:
    """Every plan attached below ``structure`` (guarded/sharded aware)."""
    plans = []
    for raw in _raw_parts(structure):
        plan = getattr(raw, "infer_plan", None)
        if plan is not None:
            plans.append(plan)
    return plans


# -- gates ---------------------------------------------------------------------


def _probe_sets(raw: Any, kind: str, gates: GateConfig) -> list[tuple[int, ...]]:
    rng = np.random.default_rng(gates.probe_seed)
    universe = raw.max_known_id() + 1
    probes: list[tuple[int, ...]] = []
    if kind == "bloom":
        probes.extend(raw.trained_positives[: gates.probe_queries])
    for _ in range(gates.probe_queries):
        size = int(rng.integers(1, 5))
        probes.append(
            tuple(sorted(set(rng.integers(0, universe, size=size).tolist())))
        )
    return probes


def _gate_metrics(
    kind: str,
    raw: Any,
    plan: InferencePlan,
    probes: list[tuple[int, ...]],
    reference_scaled: np.ndarray,
    num_positives: int,
) -> dict[str, float]:
    from ..core.qerror import mean_q_error

    variant_scaled = plan(probes)
    metrics: dict[str, float] = {
        "max_scaled_abs_delta": float(
            np.max(np.abs(variant_scaled - reference_scaled))
        )
        if len(probes)
        else 0.0,
    }
    if kind == "bloom":
        threshold = raw.threshold
        ref_decision = reference_scaled >= threshold
        var_decision = variant_scaled >= threshold
        flips = ref_decision != var_decision
        metrics["flip_fraction"] = float(flips.mean()) if len(probes) else 0.0
        negatives = ~ref_decision
        metrics["fpr_delta"] = (
            float((var_decision & negatives).sum() / max(negatives.sum(), 1))
        )
        new_fn = 0
        backup = raw.backup
        for row in range(num_positives):
            if ref_decision[row] and not var_decision[row]:
                if backup is None or not backup.contains_set(set(probes[row])):
                    new_fn += 1
        metrics["new_false_negatives"] = float(new_fn)
        return metrics
    scaler = raw.scaler
    reference_values = scaler.inverse(reference_scaled)
    variant_values = scaler.inverse(variant_scaled)
    if kind == "cardinality":
        reference_values = np.maximum(reference_values, 1.0)
        variant_values = np.maximum(variant_values, 1.0)
    metrics["mean_qerror"] = float(
        mean_q_error(variant_values, reference_values)
    )
    return metrics


def _gate_verdict(
    dtype_name: str, kind: str, metrics: dict[str, float], gates: GateConfig
) -> tuple[bool, str | None]:
    if dtype_name == "float64":
        return True, None  # the reference itself is never gated out
    if kind == "bloom":
        if metrics["new_false_negatives"] > gates.max_new_false_negatives:
            return False, (
                f"{int(metrics['new_false_negatives'])} new false negatives "
                f"on trained positives (max "
                f"{gates.max_new_false_negatives})"
            )
        if metrics["flip_fraction"] > gates.max_flip_fraction:
            return False, (
                f"decision flip fraction {metrics['flip_fraction']:.4f} "
                f"exceeds {gates.max_flip_fraction}"
            )
        if metrics["fpr_delta"] > gates.max_fpr_delta:
            return False, (
                f"false-positive-rate delta {metrics['fpr_delta']:.4f} "
                f"exceeds {gates.max_fpr_delta}"
            )
        return True, None
    if metrics["mean_qerror"] > gates.max_mean_qerror:
        return False, (
            f"mean q-error vs float64 reference {metrics['mean_qerror']:.4f} "
            f"exceeds {gates.max_mean_qerror}"
        )
    return True, None


# -- structure-level freezing --------------------------------------------------


def freeze_structure(
    structure: Any,
    *,
    dtypes: Sequence[str] = DEFAULT_DTYPES,
    active: str = "float32",
    gates: GateConfig | dict | None = None,
    fold_limit: int = DEFAULT_FOLD_LIMIT,
    attach: bool = True,
    strict: bool = False,
) -> FreezeReport:
    """Freeze, gate, and (by default) attach plans for a built structure.

    Works on raw structures, guarded facades, and sharded routers (each
    shard part is frozen and gated independently against its own model).
    ``active`` names the variant the structure serves through; a rejected
    or unavailable ``active`` falls back to float32 then float64.  With
    ``strict=True`` a gate rejection raises :class:`FrozenVariantRejected`
    instead of silently dropping the variant.
    """
    if isinstance(gates, dict):
        gates = GateConfig(**gates)
    gates = gates or GateConfig()
    dtypes = tuple(dict.fromkeys(tuple(dtypes) + ("float64",)))
    options = {
        "dtypes": list(dtypes),
        "active": active,
        "gates": gates.as_dict(),
        "fold_limit": int(fold_limit),
    }
    parts = []
    kind = None
    for raw in _raw_parts(structure):
        kind = _structure_kind(raw)
        plans = freeze(raw.model, dtypes=dtypes, fold_limit=fold_limit)
        probes = _probe_sets(raw, kind, gates)
        num_positives = (
            len(raw.trained_positives[: gates.probe_queries])
            if kind == "bloom"
            else 0
        )
        reference_scaled = raw.model.predict(probes)
        variants: dict[str, InferencePlan] = {}
        reports: dict[str, dict] = {}
        for name, plan in plans.items():
            plan.structure_kind = kind
            metrics = _gate_metrics(
                kind, raw, plan, probes, reference_scaled, num_positives
            )
            accepted, reason = _gate_verdict(name, kind, metrics, gates)
            plan.meta.update(
                {"freeze_options": options, "gate_metrics": metrics}
            )
            reports[name] = {
                "dtype": name,
                "accepted": accepted,
                "reason": reason,
                "metrics": metrics,
                "size_bytes": plan.size_bytes(),
                "bits": plan.bits,
            }
            if accepted:
                variants[name] = plan
            elif strict:
                raise FrozenVariantRejected(name, reason or "gate failed")
        chosen = active
        if chosen not in variants:
            if strict and active in dtypes:
                raise FrozenVariantRejected(
                    active, "requested active variant was not published"
                )
            chosen = "float32" if "float32" in variants else "float64"
        planset = PlanSet(variants, chosen, reports)
        if attach:
            raw.attach_plan(planset.active_plan)
        parts.append({"plans": planset, "reports": reports})
    return FreezeReport(kind=kind or "unknown", parts=parts)


def refreeze_like(old_structure: Any, new_structure: Any) -> FreezeReport | None:
    """Re-freeze ``new_structure`` with the options ``old_structure`` used.

    The :class:`~repro.maintain.BackgroundRefresher` calls this after a
    rebuild so retrained generations keep serving through a plan.  Returns
    ``None`` when the old structure carried no plan (nothing to carry
    forward).
    """
    options = None
    for plan in attached_plans(old_structure):
        options = plan.meta.get("freeze_options")
        if options is not None:
            break
    if options is None:
        return None
    return freeze_structure(
        new_structure,
        dtypes=tuple(options.get("dtypes", DEFAULT_DTYPES)),
        active=options.get("active", "float32"),
        gates=options.get("gates"),
        fold_limit=int(options.get("fold_limit", DEFAULT_FOLD_LIMIT)),
        attach=True,
    )
