"""Per-tensor int8 affine quantization for frozen plans.

The *Compressing (Multidimensional) Learned Bloom Filters* playbook:
weight bits are a knob traded against q-error/FPR.  Each tensor gets one
``(scale, zero_point)`` pair over the symmetric int8 range ``[-128, 127]``;
dequantization is ``(q - zero_point) * scale``.  Embedding and folded
tables stay int8 in memory (dequantized per gathered row), small MLP
matrices are dequantized once at freeze time — their float32 values still
sit exactly on the int8 grid, so the accuracy the gates measure is the
accuracy served.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_per_tensor", "dequantize", "quantization_error"]

QMIN, QMAX = -128, 127


def quantize_per_tensor(array: np.ndarray) -> tuple[np.ndarray, float, int]:
    """Quantize ``array`` to int8; returns ``(q, scale, zero_point)``."""
    array = np.asarray(array, dtype=np.float64)
    lo = float(min(array.min(), 0.0)) if array.size else 0.0
    hi = float(max(array.max(), 0.0)) if array.size else 0.0
    scale = (hi - lo) / (QMAX - QMIN)
    if scale <= 0.0:
        scale = 1.0
    zero_point = int(round(QMIN - lo / scale))
    zero_point = max(QMIN, min(QMAX, zero_point))
    q = np.clip(np.round(array / scale) + zero_point, QMIN, QMAX)
    return q.astype(np.int8), float(scale), zero_point


def dequantize(q: np.ndarray, scale: float, zero_point: int,
               dtype=np.float32) -> np.ndarray:
    """Map int8 codes back to floats on the quantization grid."""
    return ((q.astype(np.float64) - zero_point) * scale).astype(dtype)


def quantization_error(array: np.ndarray) -> float:
    """Max absolute round-trip error of per-tensor int8 on ``array``."""
    q, scale, zero = quantize_per_tensor(array)
    return float(np.max(np.abs(dequantize(q, scale, zero, np.float64) - array)))
