"""Frozen-plan compiled inference (ROADMAP item 1).

``freeze`` exports a trained DeepSets model into an :class:`InferencePlan`
of plain numpy ops — no graph nodes, no grad-mode checks — with
``float64``/``float32``/``int8`` weight variants behind accuracy-delta
gates.  ``freeze_structure`` attaches the gated serving variant to a
built structure; the structures themselves fall back to the autograd
path transparently whenever a plan is absent or stale.
"""

from .freeze import (
    DEFAULT_FOLD_LIMIT,
    FreezeError,
    FreezeReport,
    FrozenVariantRejected,
    GateConfig,
    attached_plans,
    freeze,
    freeze_structure,
    refreeze_like,
)
from .metrics import infer_registry
from .plan import InferencePlan, PlanError, PlanSet, model_signature
from .quantize import dequantize, quantization_error, quantize_per_tensor
from .shm import (
    ShmSegment,
    attach_plan,
    attach_segment,
    create_segment,
    publish_plan,
    shm_dir_names,
)

__all__ = [
    "ShmSegment",
    "attach_plan",
    "attach_segment",
    "create_segment",
    "publish_plan",
    "shm_dir_names",
    "DEFAULT_FOLD_LIMIT",
    "FreezeError",
    "FreezeReport",
    "FrozenVariantRejected",
    "GateConfig",
    "InferencePlan",
    "PlanError",
    "PlanSet",
    "attached_plans",
    "dequantize",
    "freeze",
    "freeze_structure",
    "infer_registry",
    "model_signature",
    "quantization_error",
    "quantize_per_tensor",
    "refreeze_like",
]
