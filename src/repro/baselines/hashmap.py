"""All-subsets HashMap structures — the exact competitors.

* :class:`SubsetHashMap` — the cardinality-task competitor (§8.1.2): every
  subset of every stored set (up to a size cap) is materialized with its
  exact count.  Always exact, O(1) lookups, but the memory explodes with
  the subset universe — which is precisely the trade-off Table 3 shows.
* :class:`SetHashIndex` — the equality-search companion built on
  permutation-invariant hashing (first position per distinct set).
"""

from __future__ import annotations

from typing import Iterable

from ..sets.collection import SetCollection
from ..sets.subsets import enumerate_subsets
from .hashing import commutative_set_hash

__all__ = ["SubsetHashMap", "SetHashIndex"]


class SubsetHashMap:
    """Exact subset-cardinality map over a collection of sets."""

    def __init__(self, collection: SetCollection, max_subset_size: int | None = None):
        counts: dict[tuple[int, ...], int] = {}
        for stored in collection:
            for subset in enumerate_subsets(stored, max_subset_size):
                counts[subset] = counts.get(subset, 0) + 1
        self._counts = counts
        self.max_subset_size = max_subset_size

    def cardinality(self, query: Iterable[int]) -> int:
        """Exact count; unseen subsets have cardinality zero."""
        return self._counts.get(tuple(sorted(set(query))), 0)

    def contains(self, query: Iterable[int]) -> bool:
        return self.cardinality(query) > 0

    def __len__(self) -> int:
        """Number of materialized subsets."""
        return len(self._counts)

    def size_bytes(self) -> int:
        """Pickled footprint of the subset->count map (Table 3's column)."""
        from ..nn.serialize import pickled_size_bytes

        return pickled_size_bytes(self._counts)


class SetHashIndex:
    """First-position index for *equality* queries via set hashing.

    Stores ``hash(set) -> first position``; collisions are resolved by
    verifying against the collection, so answers are exact.
    """

    def __init__(self, collection: SetCollection):
        self._collection = collection
        first: dict[int, list[int]] = {}
        for position, stored in enumerate(collection):
            first.setdefault(commutative_set_hash(stored), []).append(position)
        self._buckets = first

    def first_position(self, query: Iterable[int]) -> int | None:
        """First position whose stored set equals ``query`` exactly."""
        canonical = tuple(sorted(set(query)))
        for position in self._buckets.get(commutative_set_hash(canonical), ()):
            if self._collection[position] == canonical:
                return position
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
