"""An in-memory B+ tree with duplicate keys and leaf-linked range scans.

The paper's set-index competitor (§8.1.2): keys are permutation-invariant
hashes of sets and values are their positions; duplicate keys are supported
because distinct sets may hash equal and equal sets occur at several
positions.  The tree is also the auxiliary (outlier) structure of the
hybrid learned index (Table 7).

Classic algorithm: sorted keys per node, splits at ``order`` entries,
internal nodes route by strict upper bounds, leaves are chained for
in-order iteration.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: list[int] = []
        self.values: list[list[Any]] = []  # one bucket per key (duplicates)
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: list[int] = []
        self.children: list[Any] = []


class BPlusTree:
    """B+ tree mapping integer keys to buckets of values.

    Parameters
    ----------
    order:
        Maximum number of keys per node before it splits (the paper's
        competitor uses branching factor 100).
    """

    def __init__(self, order: int = 100):
        if order < 3:
            raise ValueError("order must be at least 3")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._num_entries = 0
        self._num_keys = 0

    def __len__(self) -> int:
        """Number of inserted entries (duplicates counted)."""
        return self._num_entries

    @property
    def num_unique_keys(self) -> int:
        return self._num_keys

    # -- insertion ---------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates append to the bucket)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._num_entries += 1

    def _insert(self, node, key: int, value: Any):
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position].append(value)
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [value])
            self._num_keys += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        # Internal: route to the child whose range covers the key.
        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # -- lookup -------------------------------------------------------------

    def _find_leaf(self, key: int) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect.bisect_right(node.keys, key)]
        return node

    def search(self, key: int) -> list[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return list(leaf.values[position])
        return []

    def __contains__(self, key: int) -> bool:
        return bool(self.search(key))

    def range_scan(self, low: int, high: int) -> Iterator[tuple[int, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high``."""
        leaf = self._find_leaf(low)
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.values):
                if key > high:
                    return
                if key >= low:
                    for value in bucket:
                        yield key, value
            leaf = leaf.next

    def items(self) -> Iterator[tuple[int, Any]]:
        """All entries in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            for key, bucket in zip(node.keys, node.values):
                for value in bucket:
                    yield key, value
            node = node.next

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Serialize as a flat, sorted entry list.

        The node graph links leaves into a chain, which naive pickling
        would recurse through (RecursionError beyond ~1000 leaves); the
        flat form also matches how an on-disk B+ tree would be laid out.
        """
        return {"order": self.order, "entries": list(self.items())}

    def __setstate__(self, state: dict) -> None:
        self.__init__(order=state["order"])
        # Entries arrive in key order, so this is the classic sorted bulk
        # load (append-only splits).
        for key, value in state["entries"]:
            self.insert(key, value)

    # -- diagnostics ------------------------------------------------------------

    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        levels = 1
        node = self._root
        while isinstance(node, _Internal):
            levels += 1
            node = node.children[0]
        return levels

    def check_invariants(self) -> None:
        """Validate ordering, fanout, and leaf chaining (test support)."""
        leaves: list[_Leaf] = []
        self._check_node(self._root, None, None, leaves, is_root=True)
        chained = []
        node = leaves[0] if leaves else None
        while node is not None:
            chained.append(node)
            node = node.next
        assert chained == leaves, "leaf chain does not match tree order"
        all_keys = [k for leaf in leaves for k in leaf.keys]
        assert all_keys == sorted(all_keys), "keys not globally sorted"
        assert len(all_keys) == self._num_keys

    def _check_node(self, node, low, high, leaves, is_root=False) -> None:
        keys = node.keys
        assert keys == sorted(keys), "node keys unsorted"
        assert len(keys) <= self.order, "node overflow"
        for key in keys:
            assert low is None or key >= low
            assert high is None or key < high
        if isinstance(node, _Leaf):
            assert len(node.values) == len(keys)
            leaves.append(node)
            return
        assert len(node.children) == len(keys) + 1, "fanout mismatch"
        if not is_root:
            assert len(keys) >= 1
        bounds = [low] + keys + [high]
        for child, child_low, child_high in zip(
            node.children, bounds[:-1], bounds[1:]
        ):
            self._check_node(child, child_low, child_high, leaves)
