"""Traditional Bloom filter, sized from a target false-positive rate.

This is the competitor of the learned set Bloom filter (Tables 10/11) and
the *backup* structure that guarantees the learned filter has no false
negatives.  To answer subset-membership queries over a collection of sets,
the caller inserts every (bounded-size) subset using a permutation-invariant
set hash — exactly the paper's construction (§8.1.2).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .hashing import commutative_set_hash, double_hashes

__all__ = ["BloomFilter", "bloom_size_bits", "bloom_size_bytes"]


def bloom_size_bits(num_items: int, fp_rate: float) -> int:
    """Optimal bit count ``m = -n ln p / (ln 2)^2`` (at least 8)."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    bits = -num_items * math.log(fp_rate) / (math.log(2.0) ** 2)
    return max(8, int(math.ceil(bits)))


def bloom_size_bytes(num_items: int, fp_rate: float) -> int:
    """Size in bytes of an optimally sized filter (Figure 3's y-axis)."""
    return (bloom_size_bits(num_items, fp_rate) + 7) // 8


class BloomFilter:
    """Bit-array Bloom filter over integer keys or element-id sets.

    Parameters
    ----------
    capacity:
        Expected number of inserted items; the bit array and hash count are
        sized for this capacity at the requested ``fp_rate``.
    fp_rate:
        Target false-positive probability at full capacity.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01):
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.num_bits = bloom_size_bits(capacity, fp_rate)
        self.num_hashes = max(1, round(self.num_bits / capacity * math.log(2.0)))
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self.num_inserted = 0

    # -- key-level API -------------------------------------------------------

    def add_key(self, key: int) -> None:
        for slot in double_hashes(key, self.num_hashes, self.num_bits):
            self._bits[slot >> 3] |= 1 << (slot & 7)
        self.num_inserted += 1

    def contains_key(self, key: int) -> bool:
        for slot in double_hashes(key, self.num_hashes, self.num_bits):
            if not self._bits[slot >> 3] & (1 << (slot & 7)):
                return False
        return True

    # -- set-level API (permutation invariant) ----------------------------------

    def add_set(self, elements: Iterable[int]) -> None:
        self.add_key(commutative_set_hash(elements))

    def contains_set(self, elements: Iterable[int]) -> bool:
        return self.contains_key(commutative_set_hash(elements))

    def __contains__(self, key: int) -> bool:
        return self.contains_key(key)

    # -- accounting -------------------------------------------------------------

    def size_bytes(self) -> int:
        """Payload size of the bit array."""
        return int(self._bits.nbytes)

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic for over-filled filters)."""
        return float(np.unpackbits(self._bits).mean())
