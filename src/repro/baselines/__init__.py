"""Traditional (non-learned) competitor structures from the paper's §8.1.2."""

from .bloom import BloomFilter, bloom_size_bits, bloom_size_bytes
from .bptree import BPlusTree
from .hashing import (
    canonical_set_hash,
    commutative_set_hash,
    double_hashes,
    element_hash,
)
from .hashmap import SetHashIndex, SubsetHashMap

__all__ = [
    "BloomFilter",
    "bloom_size_bits",
    "bloom_size_bytes",
    "BPlusTree",
    "SubsetHashMap",
    "SetHashIndex",
    "element_hash",
    "canonical_set_hash",
    "commutative_set_hash",
    "double_hashes",
]
