"""Permutation-invariant hashing of sets.

The paper's competitors (§8.1.2) make traditional structures set-aware by
either hashing the *sorted* concatenation of elements or using a
commutative (order-free) combination of per-element hashes.  Both are
provided; all hashes are deterministic across processes (no reliance on
Python's randomized ``hash``).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

__all__ = ["element_hash", "canonical_set_hash", "commutative_set_hash", "double_hashes"]

_MASK64 = (1 << 64) - 1


def element_hash(element: int, seed: int = 0) -> int:
    """Deterministic 64-bit hash of one element id."""
    digest = hashlib.blake2b(
        int(element).to_bytes(8, "little", signed=False),
        digest_size=8,
        salt=seed.to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


def canonical_set_hash(elements: Iterable[int], seed: int = 0) -> int:
    """Hash the sorted element sequence — invariant because of the sort."""
    ordered = sorted(set(elements))
    payload = b"".join(int(e).to_bytes(8, "little", signed=False) for e in ordered)
    digest = hashlib.blake2b(
        payload, digest_size=8, salt=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def commutative_set_hash(elements: Iterable[int], seed: int = 0) -> int:
    """Sum per-element hashes mod 2^64 — invariant without sorting.

    Addition commutes, so any permutation of the same elements yields the
    same value (duplicates are collapsed first, as sets have none).
    """
    total = 0
    for element in set(elements):
        total = (total + element_hash(element, seed)) & _MASK64
    return total


def double_hashes(key: int, count: int, modulus: int) -> list[int]:
    """``count`` slot indices via Kirsch–Mitzenmacher double hashing.

    ``g_i(x) = (h1(x) + i * h2(x)) mod m`` gives Bloom-filter behaviour
    statistically indistinguishable from ``count`` independent hashes.
    """
    h1 = element_hash(key, seed=1)
    h2 = element_hash(key, seed=2) | 1  # odd, so all slots are reachable
    return [((h1 + i * h2) & _MASK64) % modulus for i in range(count)]
