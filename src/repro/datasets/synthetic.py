"""The SD synthetic dataset (paper §8.1.1).

Generated "by randomly combining subsets of elements up to a prespecified
size (6–7 elements) to demonstrate the effects of having fewer unique
elements that appear often in different sets".  A pool of small base
subsets over a compact vocabulary is recombined into sets of size 6–7, so
element co-occurrence is structured and cardinalities are high.
"""

from __future__ import annotations

import numpy as np

from ..sets.collection import SetCollection

__all__ = ["generate_sd"]


def generate_sd(
    num_sets: int,
    vocab_size: int = 300,
    min_size: int = 6,
    max_size: int = 7,
    num_base_subsets: int | None = None,
    base_subset_size: int = 3,
    seed: int = 0,
) -> SetCollection:
    """Build the SD collection by recombining a pool of base subsets.

    Each output set unions random base subsets (plus single-element top-ups)
    until its target size is reached, so the same few-element combinations
    recur across many sets — the high-cardinality regime where compression
    is unnecessary and the non-compressed model wins (§8.2.1).
    """
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    if base_subset_size > vocab_size:
        raise ValueError("base_subset_size cannot exceed vocab_size")
    rng = np.random.default_rng(seed)
    num_base_subsets = num_base_subsets or max(vocab_size // 2, 10)
    base_pool = [
        tuple(sorted(rng.choice(vocab_size, size=base_subset_size, replace=False)))
        for _ in range(num_base_subsets)
    ]
    sets: list[tuple[int, ...]] = []
    for _ in range(num_sets):
        target = int(rng.integers(min_size, max_size + 1))
        elements: set[int] = set()
        while len(elements) < target:
            base = base_pool[int(rng.integers(0, len(base_pool)))]
            for element in base:
                if len(elements) >= target:
                    break
                elements.add(int(element))
            if len(elements) < target:
                elements.add(int(rng.integers(0, vocab_size)))
        sets.append(tuple(sorted(elements)))
    return SetCollection(sets)
