"""Synthetic dataset generators standing in for the paper's data (§8.1.1)."""

from .digits import digit_sum_eval_data, digit_sum_training_data
from .registry import DATASETS, DatasetSpec, dataset_names, load_dataset, repro_scale
from .synthetic import generate_sd
from .zipf import generate_rw_like, generate_tweets_like, sample_zipf_sets, zipf_weights

__all__ = [
    "generate_rw_like",
    "generate_tweets_like",
    "generate_sd",
    "sample_zipf_sets",
    "zipf_weights",
    "digit_sum_training_data",
    "digit_sum_eval_data",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "repro_scale",
]
