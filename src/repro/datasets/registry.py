"""Named dataset presets mirroring the paper's Table 2 line-up.

The five presets correspond to RW-200k / RW-1.5M / RW-3M / Tweets / SD,
scaled down so a full benchmark run fits a single CPU core.  Every preset
size is multiplied by ``REPRO_SCALE`` (environment variable, default 1.0),
so the suite can be pushed toward paper scale on bigger hardware without
code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from ..sets.collection import SetCollection
from .synthetic import generate_sd
from .zipf import generate_rw_like, generate_tweets_like

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "repro_scale"]


def repro_scale() -> float:
    """Global size multiplier from the ``REPRO_SCALE`` environment variable."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        raise ValueError("REPRO_SCALE must be a number") from None
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset: its paper counterpart and generator."""

    name: str
    paper_name: str
    base_num_sets: int
    factory: Callable[..., SetCollection]
    seed: int

    def generate(self, scale: float | None = None) -> SetCollection:
        scale = repro_scale() if scale is None else scale
        num_sets = max(int(self.base_num_sets * scale), 100)
        return self.factory(num_sets=num_sets, seed=self.seed)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("rw-small", "RW-200k", 6_000, generate_rw_like, seed=11),
        DatasetSpec("rw-mid", "RW-1.5M", 18_000, generate_rw_like, seed=12),
        DatasetSpec("rw-large", "RW-3M", 36_000, generate_rw_like, seed=13),
        DatasetSpec("tweets", "Tweets", 12_000, generate_tweets_like, seed=14),
        DatasetSpec("sd", "SD", 3_000, generate_sd, seed=15),
    )
}


def dataset_names() -> list[str]:
    """Names of the available presets, in Table 2 order."""
    return list(DATASETS)


def load_dataset(name: str, scale: float | None = None) -> SetCollection:
    """Generate a preset collection by name (sizes scaled by REPRO_SCALE)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return spec.generate(scale)
