"""Sum-of-digits task (paper §8.5.1, Figure 7).

The original DeepSets text experiment: inputs are multisets of digits,
labels are their sums; training uses multisets of at most ``max_set_size``
digits, testing probes *generalization to much larger multisets* (sizes 5
to 100).  The paper re-runs it (a) as published with digits 1–10 and (b)
with values up to 100/1000 where the compressed embedding starts paying
off.

Digits may repeat (these are multisets — the models' ragged batching does
not require distinct ids), matching the original experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["digit_sum_training_data", "digit_sum_eval_data"]


def digit_sum_training_data(
    num_samples: int,
    max_set_size: int = 10,
    max_digit: int = 10,
    seed: int = 0,
) -> tuple[list[list[int]], np.ndarray]:
    """Multisets of 1..max_set_size digits in [1, max_digit] with their sums.

    Digit ids are the values themselves (0 is unused), so an embedding needs
    ``max_digit + 1`` rows — or compressed sub-element tables.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, max_set_size + 1, size=num_samples)
    sets: list[list[int]] = []
    sums = np.empty(num_samples, dtype=np.float64)
    for row, size in enumerate(sizes):
        digits = rng.integers(1, max_digit + 1, size=size)
        sets.append(digits.tolist())
        sums[row] = digits.sum()
    return sets, sums


def digit_sum_eval_data(
    set_size: int,
    num_samples: int,
    max_digit: int = 10,
    seed: int = 1,
) -> tuple[list[list[int]], np.ndarray]:
    """Fixed-size multisets for one x-axis point of Figure 7."""
    if set_size < 1:
        raise ValueError("set_size must be positive")
    rng = np.random.default_rng(seed)
    digits = rng.integers(1, max_digit + 1, size=(num_samples, set_size))
    return [row.tolist() for row in digits], digits.sum(axis=1).astype(np.float64)
