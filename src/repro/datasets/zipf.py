"""Zipf-skewed synthetic stand-ins for the paper's proprietary datasets.

The paper evaluates on two real-world collections we cannot obtain:

* **RW** — company server logs (file accesses + user logins), sets of 2–8
  elements over a huge sparse vocabulary where "most of the elements appear
  only in a small number of sets" (Table 2 + §8.1.1).
* **Tweets** — hashtags from a 50 GB Twitter crawl; the paper itself notes
  hashtag frequencies follow Zipf's law (§7.1.1).

Both are reproduced here as Zipf-distributed element draws with matched set
size ranges.  The statistics that drive model behaviour — vocabulary size
relative to collection size, heavy skew, subset-cardinality distribution —
are preserved; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from ..sets.collection import SetCollection

__all__ = ["zipf_weights", "sample_zipf_sets", "generate_rw_like", "generate_tweets_like"]


def zipf_weights(vocab_size: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(alpha) probabilities over ``vocab_size`` ranks."""
    if vocab_size <= 0:
        raise ValueError("vocab_size must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    weights = 1.0 / np.arange(1, vocab_size + 1, dtype=np.float64) ** alpha
    return weights / weights.sum()


def sample_zipf_sets(
    num_sets: int,
    vocab_size: int,
    set_sizes: np.ndarray,
    alpha: float,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Draw ``num_sets`` distinct-element sets with the given sizes.

    Elements are drawn i.i.d. from the Zipf distribution via inverse-CDF
    sampling, then de-duplicated per set; short sets are topped up with
    extra draws (head elements collide often under heavy skew).
    """
    if len(set_sizes) != num_sets:
        raise ValueError("set_sizes must have one entry per set")
    cdf = np.cumsum(zipf_weights(vocab_size, alpha))
    max_size = int(set_sizes.max())
    # Oversample so most sets are complete after de-duplication.
    draws = np.searchsorted(cdf, rng.random((num_sets, max_size * 3)))
    sets: list[tuple[int, ...]] = []
    for row, size in zip(draws, set_sizes):
        unique = list(dict.fromkeys(row.tolist()))  # keep draw order
        while len(unique) < size:
            extra = int(np.searchsorted(cdf, rng.random()))
            if extra not in unique:
                unique.append(extra)
        sets.append(tuple(sorted(unique[: int(size)])))
    return sets


def generate_rw_like(
    num_sets: int,
    vocab_size: int | None = None,
    alpha: float = 1.1,
    min_size: int = 2,
    max_size: int = 8,
    seed: int = 0,
) -> SetCollection:
    """RW-style collection: sets of 2–8 elements, huge sparse vocabulary.

    ``vocab_size`` defaults to ``num_sets // 3``, which under Zipf draws
    reproduces the RW signature from Table 2: a median element frequency of
    only a handful of sets (most subsets then have cardinality 1) next to a
    heavy head.
    """
    rng = np.random.default_rng(seed)
    vocab_size = vocab_size or max(num_sets // 3, 50)
    sizes = rng.integers(min_size, max_size + 1, size=num_sets)
    return SetCollection(sample_zipf_sets(num_sets, vocab_size, sizes, alpha, rng))


def generate_tweets_like(
    num_sets: int,
    vocab_size: int | None = None,
    alpha: float = 1.15,
    max_size: int = 12,
    seed: int = 0,
) -> SetCollection:
    """Tweets-style collection: 1..12 hashtags per tweet, Zipf vocabulary.

    Tweet hashtag counts are small and skewed towards one; a truncated
    geometric distribution reproduces that (most tweets carry 1–3 tags).
    ``vocab_size`` defaults to ``num_sets // 26``, matching Table 2's
    Tweets ratio (1.9M sets over 73.6k unique hashtags).
    """
    rng = np.random.default_rng(seed)
    vocab_size = vocab_size or max(num_sets // 26, 50)
    sizes = np.minimum(rng.geometric(0.45, size=num_sets), max_size)
    return SetCollection(sample_zipf_sets(num_sets, vocab_size, sizes, alpha, rng))
