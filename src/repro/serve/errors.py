"""Exception types of the serving subsystem."""

from __future__ import annotations

__all__ = ["ServeError", "ServerClosedError", "ServerOverloadedError"]


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class ServerClosedError(ServeError):
    """A request was submitted to a server that has been shut down."""


class ServerOverloadedError(ServeError):
    """The admission queue is full and the overflow policy is ``reject``."""
