"""Operator-facing telemetry for the serving subsystem.

One :class:`ServerStats` instance aggregates everything an operator needs
to judge a server: throughput (requests served, batches dispatched, mean
batch size — the coalescing win is ``requests / batches``), latency
percentiles from a bounded reservoir, overload outcomes (shed / rejected),
cache effectiveness, snapshot swaps, and — when the served structure is a
guarded facade — its reliability :class:`HealthCounters` folded into the
same report.

The counters are stored in a :class:`repro.obs.MetricsRegistry` (one per
``ServerStats`` unless a shared registry is passed), so the same numbers
that back :meth:`as_dict` / :meth:`report_line` render as a Prometheus
exposition through the TCP frontend's ``METRICS`` verb.  A single
instance-level lock still serializes every mutation, and all reads go
through the locked :meth:`_snapshot`, so reported counter sets are always
mutually consistent — no torn served/failed/batch triples under
concurrent recording.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from ..obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = ["ServerStats"]

_COUNTERS = (
    ("requests_submitted", "repro_serve_requests_submitted_total",
     "Requests admitted through submit()"),
    ("requests_served", "repro_serve_requests_served_total",
     "Requests answered successfully"),
    ("requests_failed", "repro_serve_requests_failed_total",
     "Requests whose future resolved with an error"),
    ("cache_hits_served", "repro_serve_cache_hits_served_total",
     "Requests answered from the result cache"),
    ("batches_dispatched", "repro_serve_batches_dispatched_total",
     "Micro-batches dispatched to the structure"),
    ("batched_requests", "repro_serve_batched_requests_total",
     "Requests carried inside dispatched batches"),
    ("shed", "repro_serve_shed_total",
     "Requests degraded to the exact structure on overload"),
    ("rejected", "repro_serve_rejected_total",
     "Requests rejected on overload"),
    ("snapshot_swaps", "repro_serve_snapshot_swaps_total",
     "Hot snapshot swaps performed"),
)


class ServerStats:
    """Thread-safe, registry-backed counters + latency reservoir.

    Public counter names (``stats.requests_served`` …) remain plain-int
    reads; the values live in registry counters so the exposition and the
    attribute views can never disagree.
    """

    def __init__(self, latency_reservoir: int = 100_000,
                 registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._counters = {
            attr: self.registry.counter(metric_name, help_text)
            for attr, metric_name, help_text in _COUNTERS
        }
        self._latency_hist = self.registry.histogram(
            "repro_serve_latency_seconds",
            "End-to-end request latency (submit to resolved future)",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.registry.gauge_function(
            "repro_serve_mean_batch_size",
            "Mean requests per dispatched batch (the coalescing win)",
            lambda: self.mean_batch_size,
        )
        self._latencies: deque[float] = deque(maxlen=latency_reservoir)

    # -- attribute views (read whole ints; see _snapshot for coherent sets) ----

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # -- recording (called from server / batcher callbacks) -------------------

    def record_submitted(self) -> None:
        with self._lock:
            self._counters["requests_submitted"].inc()

    def record_served(self, latency_seconds: float, from_cache: bool = False) -> None:
        with self._lock:
            self._counters["requests_served"].inc()
            if from_cache:
                self._counters["cache_hits_served"].inc()
            self._latencies.append(latency_seconds)
            self._latency_hist.observe(latency_seconds)

    def record_failed(self) -> None:
        with self._lock:
            self._counters["requests_failed"].inc()

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._counters["batches_dispatched"].inc()
            self._counters["batched_requests"].inc(size)

    def record_shed(self) -> None:
        with self._lock:
            self._counters["shed"].inc()

    def record_reject(self) -> None:
        with self._lock:
            self._counters["rejected"].inc()

    def record_swap(self) -> None:
        with self._lock:
            self._counters["snapshot_swaps"].inc()

    # -- aggregates ------------------------------------------------------------

    def _snapshot(self) -> dict:
        """All counters read under one lock — a mutually consistent set.

        Every reporting path (``mean_batch_size``, :meth:`as_dict`,
        :meth:`report_line`) goes through here rather than reading the
        counters piecemeal, which is what used to allow torn
        served/failed/batch combinations under concurrent recording.
        """
        with self._lock:
            out = {
                attr: int(counter.value)
                for attr, counter in self._counters.items()
            }
        out["mean_batch_size"] = (
            out["batched_requests"] / out["batches_dispatched"]
            if out["batches_dispatched"]
            else 0.0
        )
        return out

    @property
    def mean_batch_size(self) -> float:
        return self._snapshot()["mean_batch_size"]

    def latency_percentiles_ms(self) -> dict[str, float]:
        """p50/p95/p99 over the (bounded) latency reservoir, in ms."""
        with self._lock:
            sample = np.asarray(self._latencies, dtype=np.float64)
        if not len(sample):
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        p50, p95, p99 = np.percentile(sample, (50, 95, 99)) * 1000.0
        return {"p50_ms": float(p50), "p95_ms": float(p95), "p99_ms": float(p99)}

    def as_dict(self, cache=None, health=None) -> dict:
        """Full snapshot; pass the server's cache / the structure's health
        counters to fold them into one report."""
        out = self._snapshot()
        out.update(self.latency_percentiles_ms())
        if cache is not None:
            out["cache"] = cache.as_dict()
        if health is not None:
            out["health"] = health.as_dict()
        return out

    def report_line(self) -> str:
        """One-line operator summary (the serving analogue of
        :meth:`HealthCounters.report_line`)."""
        snap = self._snapshot()
        pct = self.latency_percentiles_ms()
        return (
            f"[serve] served={snap['requests_served']} "
            f"failed={snap['requests_failed']} "
            f"batches={snap['batches_dispatched']} "
            f"mean_batch={snap['mean_batch_size']:.2f} "
            f"cache_hits={snap['cache_hits_served']} "
            f"shed={snap['shed']} rejected={snap['rejected']} "
            f"swaps={snap['snapshot_swaps']} "
            f"p50={pct['p50_ms']:.3f}ms p95={pct['p95_ms']:.3f}ms "
            f"p99={pct['p99_ms']:.3f}ms"
        )
