"""Operator-facing telemetry for the serving subsystem.

One :class:`ServerStats` instance aggregates everything an operator needs
to judge a server: throughput (requests served, batches dispatched, mean
batch size — the coalescing win is ``requests / batches``), latency
percentiles from a bounded reservoir, overload outcomes (shed / rejected),
cache effectiveness, snapshot swaps, and — when the served structure is a
guarded facade — its reliability :class:`HealthCounters` folded into the
same report.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["ServerStats"]


class ServerStats:
    """Thread-safe counters + latency reservoir for one server."""

    def __init__(self, latency_reservoir: int = 100_000):
        self._lock = threading.Lock()
        self.requests_submitted = 0
        self.requests_served = 0
        self.requests_failed = 0
        self.cache_hits_served = 0
        self.batches_dispatched = 0
        self.batched_requests = 0
        self.shed = 0
        self.rejected = 0
        self.snapshot_swaps = 0
        self._latencies: deque[float] = deque(maxlen=latency_reservoir)

    # -- recording (called from server / batcher callbacks) -------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.requests_submitted += 1

    def record_served(self, latency_seconds: float, from_cache: bool = False) -> None:
        with self._lock:
            self.requests_served += 1
            if from_cache:
                self.cache_hits_served += 1
            self._latencies.append(latency_seconds)

    def record_failed(self) -> None:
        with self._lock:
            self.requests_failed += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches_dispatched += 1
            self.batched_requests += size

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_swap(self) -> None:
        with self._lock:
            self.snapshot_swaps += 1

    # -- aggregates ------------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        return (
            self.batched_requests / self.batches_dispatched
            if self.batches_dispatched
            else 0.0
        )

    def latency_percentiles_ms(self) -> dict[str, float]:
        """p50/p95/p99 over the (bounded) latency reservoir, in ms."""
        with self._lock:
            sample = np.asarray(self._latencies, dtype=np.float64)
        if not len(sample):
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        p50, p95, p99 = np.percentile(sample, (50, 95, 99)) * 1000.0
        return {"p50_ms": float(p50), "p95_ms": float(p95), "p99_ms": float(p99)}

    def as_dict(self, cache=None, health=None) -> dict:
        """Full snapshot; pass the server's cache / the structure's health
        counters to fold them into one report."""
        with self._lock:
            out = {
                "requests_submitted": self.requests_submitted,
                "requests_served": self.requests_served,
                "requests_failed": self.requests_failed,
                "cache_hits_served": self.cache_hits_served,
                "batches_dispatched": self.batches_dispatched,
                "batched_requests": self.batched_requests,
                "mean_batch_size": self.mean_batch_size,
                "shed": self.shed,
                "rejected": self.rejected,
                "snapshot_swaps": self.snapshot_swaps,
            }
        out.update(self.latency_percentiles_ms())
        if cache is not None:
            out["cache"] = cache.as_dict()
        if health is not None:
            out["health"] = health.as_dict()
        return out

    def report_line(self) -> str:
        """One-line operator summary (the serving analogue of
        :meth:`HealthCounters.report_line`)."""
        pct = self.latency_percentiles_ms()
        return (
            f"[serve] served={self.requests_served} "
            f"failed={self.requests_failed} "
            f"batches={self.batches_dispatched} "
            f"mean_batch={self.mean_batch_size:.2f} "
            f"cache_hits={self.cache_hits_served} "
            f"shed={self.shed} rejected={self.rejected} "
            f"swaps={self.snapshot_swaps} "
            f"p50={pct['p50_ms']:.3f}ms p95={pct['p95_ms']:.3f}ms "
            f"p99={pct['p99_ms']:.3f}ms"
        )
