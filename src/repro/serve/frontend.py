"""Asyncio line-protocol frontend (the pool's replacement for thread-per-connection TCP).

Speaks exactly the protocol of :mod:`repro.serve.net` — same verbs
(``STATS`` / ``METRICS`` / ``TRACE`` / ``REFRESH`` / ``STALENESS`` /
``QUIT``), same
answer formatting, same hardening (idle timeout, bounded line length,
per-request deadline) — but multiplexes every connection onto one event
loop instead of one thread each, so ten thousand mostly-idle connections
cost file descriptors rather than stacks.  The backend is duck-typed: a
threaded :class:`~repro.serve.server.SetServer` or a
:class:`~repro.serve.pool.WorkerPool` (anything with ``submit`` /
``kind`` / ``stats_dict`` / ``metrics_text`` / ``trace_spans``).  When
the backend is a pool, the extra ``WORKERS`` verb reports the per-worker
liveness/generation table as JSON.

The event loop never blocks on an answer: ``submit`` returns a
``concurrent.futures.Future`` resolved by the backend's own threads
(dispatcher or pipe receivers), which the handler awaits through
``asyncio.wrap_future`` — slow queries stall only their own connection.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any

from .net import _format_answer, parse_query_line

__all__ = ["AsyncTcpFrontend"]


class AsyncTcpFrontend:
    """Owns the listening socket; run with :meth:`serve_forever` (blocking)
    or :meth:`start_background` (tests), stop with :meth:`shutdown`.

    Parameters mirror :class:`~repro.serve.net.TcpServeFrontend`.
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float | None = 300.0,
        max_line_bytes: int = 65536,
        request_deadline_s: float | None = 30.0,
    ):
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive or None")
        if max_line_bytes < 16:
            raise ValueError("max_line_bytes must be >= 16")
        if request_deadline_s is not None and request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive or None")
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.idle_timeout_s = idle_timeout_s
        self.max_line_bytes = int(max_line_bytes)
        self.request_deadline_s = request_deadline_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._address: tuple[str, int] | None = None
        self._failure: BaseException | None = None

    # -- lifecycle -------------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle, self.host, self.port,
                limit=self.max_line_bytes + 2,
            )
        except BaseException as exc:
            self._failure = exc
            self._started.set()
            raise
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()

    def serve_forever(self) -> None:
        asyncio.run(self._main())

    def _serve_background(self) -> None:
        try:
            self.serve_forever()
        except BaseException:
            # Already surfaced through ``_failure`` -> start_background's
            # RuntimeError; re-raising here would only dirty the thread.
            if self._failure is None:
                raise

    def start_background(self) -> "AsyncTcpFrontend":
        self._thread = threading.Thread(
            target=self._serve_background, name="repro-serve-async", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError(
                f"frontend failed to bind: {self._failure}"
            ) from self._failure
        return self

    def wait(self) -> None:
        """Block until a background frontend stops (``serve --workers``)."""
        if self._thread is not None:
            self._thread.join()

    def shutdown(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — resolves ephemeral port 0 requests."""
        self._started.wait(timeout=30.0)
        if self._address is None:
            raise RuntimeError("frontend is not listening")
        return self._address

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_lines(reader, writer)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_lines(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        backend = self.backend
        while True:
            try:
                raw = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout_s
                )
            except asyncio.TimeoutError:
                return  # idle connection: drop it
            except (asyncio.LimitOverrunError, ValueError):
                # The line outgrew the stream limit; there is no safe way
                # to resynchronize mid-line, so answer and hang up.
                await self._reply(writer, "error line too long")
                return
            if not raw:
                return
            if len(raw) > self.max_line_bytes:
                await self._reply(writer, "error line too long")
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            tokens = line.split()
            command = tokens[0].upper()
            if command == "QUIT":
                return
            if command == "STATS":
                await self._reply(
                    writer, json.dumps(backend.stats_dict(), sort_keys=True)
                )
                continue
            if command == "METRICS":
                body = backend.metrics_text()
                lines = body.splitlines() + ["# EOF"]
                await self._reply(writer, "\n".join(lines))
                continue
            if command == "TRACE":
                limit = 200
                if len(tokens) > 1:
                    try:
                        limit = max(0, int(tokens[1]))
                    except ValueError:
                        await self._reply(writer, "error malformed trace limit")
                        continue
                await self._reply(writer, json.dumps(backend.trace_spans(limit)))
                continue
            if command == "WORKERS":
                info = getattr(backend, "workers_info", None)
                if info is None:
                    await self._reply(writer, "error not a worker pool")
                else:
                    await self._reply(writer, json.dumps(info()))
                continue
            if command == "REFRESH":
                maintainer = getattr(backend, "maintainer", None)
                if maintainer is None:
                    await self._reply(writer, json.dumps({"auto_refresh": False}))
                    continue
                if len(tokens) > 1 and tokens[1].upper() == "NOW":
                    try:
                        maintainer.refresh_now(("manual",))
                    except Exception as exc:
                        await self._reply(writer, f"error {type(exc).__name__}")
                        continue
                await self._reply(
                    writer, json.dumps(maintainer.status(), sort_keys=True)
                )
                continue
            if command == "STALENESS":
                maintainer = getattr(backend, "maintainer", None)
                status = getattr(maintainer, "staleness_status", None)
                if status is None:
                    await self._reply(writer, json.dumps({"adaptive": False}))
                    continue
                try:
                    await self._reply(
                        writer, json.dumps(status(), sort_keys=True)
                    )
                except Exception as exc:
                    await self._reply(writer, f"error {type(exc).__name__}")
                continue
            try:
                spec, query = parse_query_line(tokens)
            except ValueError:
                await self._reply(writer, "error malformed query")
                continue
            try:
                answer = await asyncio.wait_for(
                    asyncio.wrap_future(backend.submit(query, predicate=spec)),
                    timeout=self.request_deadline_s,
                )
            except asyncio.TimeoutError:
                await self._reply(writer, "error deadline exceeded")
            except Exception as exc:
                await self._reply(writer, f"error {type(exc).__name__}")
            else:
                await self._reply(writer, _format_answer(backend.kind, answer))

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, text: str) -> None:
        writer.write((text + "\n").encode("utf-8"))
        await writer.drain()
