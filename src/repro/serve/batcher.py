"""Dynamic micro-batching: coalesce concurrent requests into one model call.

Learned set structures answer a batch of ``n`` queries in far less than
``n`` single-query calls (one vectorized forward pass instead of ``n``
tiny ones), but clients arrive one query at a time.  The
:class:`MicroBatcher` bridges the two: client threads enqueue requests into
a bounded admission queue and block on per-request futures; a single
dispatcher thread drains the queue into batches — flushing when either
``max_batch_size`` requests have accumulated or the oldest request has
waited ``max_wait_ms`` — and resolves every future from one batched call.

Overload handling is explicit.  When the admission queue is full the
configured :class:`OverflowPolicy` decides between blocking the producer
(``block``), failing fast (``reject`` → :class:`ServerOverloadedError` on
the future), and degrading gracefully (``shed-to-exact`` → the request is
answered on the *caller's* thread by the exact fallback structure, trading
latency for guaranteed service).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..obs.trace import Tracer
from .errors import ServerClosedError, ServerOverloadedError

__all__ = ["BatchPolicy", "MicroBatcher", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("block", "reject", "shed-to-exact")

# Dispatcher wake-up sentinel: close() enqueues it so a dispatcher blocked
# on an empty queue notices the shutdown immediately.
_SENTINEL = object()


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing coalescing and admission control."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    max_queue: int = 1024
    overflow: str = "block"

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms cannot be negative")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )


@dataclass
class _Request:
    query: Any
    future: Future
    # Enqueue timestamp (``time.monotonic``): the dispatcher reports the
    # oldest request's queue wait as the batch's ``batch_wait`` trace span.
    enqueued_at: float = 0.0


class MicroBatcher:
    """Bounded queue + dispatcher thread resolving futures batch-wise.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(queries) -> results`` — called on the dispatcher thread
        with the coalesced queries; must return one result per query, in
        order.
    policy:
        Coalescing and admission-control configuration.
    shed_fn:
        ``shed_fn(query) -> result`` for the ``shed-to-exact`` overflow
        policy, executed on the submitting thread.  Required iff that
        policy is selected.
    on_batch:
        Optional ``on_batch(batch_size)`` telemetry callback, called after
        every dispatched batch.
    on_shed / on_reject:
        Optional zero-argument telemetry callbacks for overflow outcomes.
    tracer:
        Optional :class:`repro.obs.Tracer`; when given, every dispatched
        batch records a ``batch_wait`` span (the oldest request's queue
        wait plus coalescing delay — the latency cost of batching).
    """

    def __init__(
        self,
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        policy: BatchPolicy | None = None,
        shed_fn: Callable[[Any], Any] | None = None,
        on_batch: Callable[[int], None] | None = None,
        on_shed: Callable[[], None] | None = None,
        on_reject: Callable[[], None] | None = None,
        tracer: Tracer | None = None,
    ):
        self.policy = policy or BatchPolicy()
        if self.policy.overflow == "shed-to-exact" and shed_fn is None:
            raise ValueError("overflow='shed-to-exact' requires a shed_fn")
        self._batch_fn = batch_fn
        self._shed_fn = shed_fn
        self._on_batch = on_batch
        self._on_shed = on_shed
        self._on_reject = on_reject
        self._tracer = tracer
        self._queue: queue.Queue = queue.Queue(maxsize=self.policy.max_queue)
        self._closed = False
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatcher", daemon=True
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting requests, drain the queue, join the dispatcher.

        Every request admitted before ``close`` is still served — shutdown
        is graceful, not abortive.  Idempotent.
        """
        if self._closed:
            if self._thread is not None:
                self._thread.join(timeout)
            return
        self._closed = True
        if self._thread is None:
            self._fail_pending(ServerClosedError("batcher never started"))
            return
        self._queue.put(_SENTINEL)
        self._thread.join(timeout)
        # A submit racing with close can slip a request in after the
        # dispatcher drained; resolve any such straggler instead of leaving
        # its future pending forever.
        self._fail_pending(ServerClosedError("server closed"))

    # -- submission (any thread) ----------------------------------------------

    def submit(self, query: Any) -> Future:
        """Enqueue ``query``; returns a future resolving to its result.

        Never raises for overload — overflow outcomes are delivered through
        the future so callers handle one error surface.  Submitting to a
        closed batcher raises :class:`ServerClosedError` (a programming
        error, not a load condition).
        """
        if self._closed:
            raise ServerClosedError("cannot submit to a closed server")
        future: Future = Future()
        request = _Request(query, future, enqueued_at=time.monotonic())
        policy = self.policy.overflow
        if policy == "block":
            self._queue.put(request)
            return future
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            if policy == "reject":
                if self._on_reject is not None:
                    self._on_reject()
                future.set_exception(
                    ServerOverloadedError(
                        f"admission queue full ({self.policy.max_queue})"
                    )
                )
            else:  # shed-to-exact: serve on the caller's thread
                if self._on_shed is not None:
                    self._on_shed()
                try:
                    future.set_result(self._shed_fn(query))
                except Exception as exc:
                    future.set_exception(exc)
        return future

    # -- dispatcher (one thread) ----------------------------------------------

    def _run(self) -> None:
        draining = False
        while True:
            if draining:
                try:
                    first = self._queue.get_nowait()
                except queue.Empty:
                    return
            else:
                first = self._queue.get()
            if first is _SENTINEL:
                # No new submissions can arrive (closed flag is already
                # set), so whatever remains queued is a finite backlog.
                draining = True
                continue
            batch = [first]
            deadline = time.monotonic() + self.policy.max_wait_ms / 1000.0
            while len(batch) < self.policy.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    draining = True
                    break
                batch.append(item)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Request]) -> None:
        if self._tracer is not None:
            self._tracer.record(
                "batch_wait",
                (time.monotonic() - batch[0].enqueued_at) * 1000.0,
                batch_size=len(batch),
            )
        try:
            results = self._batch_fn([request.query for request in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results "
                    f"for {len(batch)} queries"
                )
        except Exception:
            self._dispatch_singly(batch)
        else:
            for request, result in zip(batch, results):
                request.future.set_result(result)
        if self._on_batch is not None:
            self._on_batch(len(batch))

    def _dispatch_singly(self, batch: list[_Request]) -> None:
        """Fallback after a failed batch call: isolate the poison request.

        One malformed query must not fail its co-batched neighbours, so the
        batch is retried one request at a time and only the requests that
        fail individually carry the exception.
        """
        for request in batch:
            try:
                results = self._batch_fn([request.query])
                if len(results) != 1:
                    raise RuntimeError("batch_fn returned a short result")
            except Exception as exc:
                request.future.set_exception(exc)
            else:
                request.future.set_result(results[0])

    def _fail_pending(self, error: Exception) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SENTINEL:
                item.future.set_exception(error)
