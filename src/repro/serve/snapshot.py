"""Atomic snapshot holder for hot structure swap.

The paper's update strategy (§7.2) defers drift to the auxiliary structure
and rebuilds the model when accuracy deteriorates (``should_retrain``).  In
a serving system the rebuild must not pause traffic: the new structure is
trained off-thread (``from_training_data``), then installed here with a
single reference swap.  Requests in flight keep the snapshot they started
with — the dispatcher reads the holder once per batch — so a swap never
tears a batch across two models and never loses a request.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import time
from typing import Any

__all__ = ["Snapshot", "SnapshotHolder"]


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving generation: a structure plus its version."""

    structure: Any
    version: int
    installed_at: float = field(default_factory=time)


class SnapshotHolder:
    """Holds the current :class:`Snapshot`; swaps are atomic.

    Reading :attr:`current` is a single attribute load (atomic under the
    GIL), so the hot path takes no lock; the lock only serializes
    concurrent swappers so versions stay monotonic.
    """

    def __init__(self, structure: Any):
        self._lock = threading.Lock()
        self._snapshot = Snapshot(structure, version=0)

    @property
    def current(self) -> Snapshot:
        return self._snapshot

    def swap(self, structure: Any) -> Snapshot:
        """Install ``structure`` as the new serving generation."""
        with self._lock:
            snapshot = Snapshot(structure, version=self._snapshot.version + 1)
            self._snapshot = snapshot
        return snapshot
