"""`SetServer`: concurrent query serving for the learned set structures.

Ties the serving pieces together around one structure (learned or guarded):

* requests from any number of client threads enter through
  :meth:`SetServer.submit` (future-based) or :meth:`SetServer.query`
  (blocking) and are coalesced by a :class:`MicroBatcher` into vectorized
  ``estimate_many`` / ``lookup_many`` / ``contains_many`` calls;
* a :class:`QueryCache` answers repeated queries without touching the
  model, and is invalidated per key on structure updates (via
  :class:`repro.core.UpdateNotifier`) and wholesale on snapshot swap;
* a :class:`SnapshotHolder` lets a retrained structure replace the serving
  structure atomically — in-flight batches finish on the generation they
  started with, so a swap mid-traffic loses no requests;
* a :class:`ServerStats` surface aggregates throughput, latency
  percentiles, overflow outcomes, cache counters, and (for guarded
  structures) the reliability health counters.

The server itself never inspects query contents beyond canonicalization —
validation semantics belong to the structure (use the guarded facades for
untrusted input; a malformed query against a raw structure fails only its
own future, never its batchmates).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Iterable, Sequence

from ..core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    PredicateCardinalitySuite,
)
from ..core.qerror import q_error
from ..obs.trace import Tracer, get_tracer
from ..reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedPredicateSuite,
    GuardedSetIndex,
)
from ..sets.inverted import InvertedIndex
from ..sets.predicates import SUBSET, Predicate, as_predicate
from ..shard import (
    ShardedBloomFilter,
    ShardedCardinalityEstimator,
    ShardedSetIndex,
)
from .batcher import BatchPolicy, MicroBatcher
from .cache import QueryCache
from .snapshot import Snapshot, SnapshotHolder
from .stats import ServerStats

__all__ = ["SetServer", "canonical_query", "detect_kind", "exact_answer"]

_KIND_TYPES = {
    "cardinality": (
        LearnedCardinalityEstimator,
        GuardedCardinalityEstimator,
        ShardedCardinalityEstimator,
        PredicateCardinalitySuite,
        GuardedPredicateSuite,
    ),
    "index": (LearnedSetIndex, GuardedSetIndex, ShardedSetIndex),
    "bloom": (LearnedBloomFilter, GuardedBloomFilter, ShardedBloomFilter),
}


def detect_kind(structure: Any) -> str:
    """Task kind (``cardinality`` / ``index`` / ``bloom``) of a structure."""
    for kind, types in _KIND_TYPES.items():
        if isinstance(structure, types):
            return kind
    raise TypeError(
        f"cannot serve {type(structure).__name__}; expected one of the "
        "learned structures or their guarded facades"
    )


def _inner_structure(structure: Any) -> Any:
    """The raw learned structure behind a guarded facade (or itself)."""
    if isinstance(structure, GuardedCardinalityEstimator):
        return structure.estimator
    if isinstance(structure, GuardedPredicateSuite):
        return structure.suite
    if isinstance(structure, GuardedSetIndex):
        return structure.index
    if isinstance(structure, GuardedBloomFilter):
        return structure.filter
    return structure


def _backup_filter(structure: Any):
    """The Bloom backup filter of a (possibly guarded) membership structure."""
    return getattr(_inner_structure(structure), "backup", None)


def canonical_query(query: Any) -> tuple[int, ...] | None:
    """Sorted de-duplicated int tuple, or ``None`` for malformed input."""
    try:
        return tuple(sorted({int(element) for element in query}))
    except (TypeError, ValueError):
        return None


def _auxiliary_override_of(
    structure: Any, canonical: tuple[int, ...], predicate: Predicate = SUBSET
) -> Any:
    """Post-build mutation recorded for ``canonical``, if any.

    The exact :class:`InvertedIndex` is built from the collection and
    never absorbs §6's updates — those live in the served structure's
    auxiliary override layer.  An exact-path answer must consult that
    layer first, or an inserted override would silently revert to its
    pre-insert answer whenever the model path is bypassed.  A predicate
    suite keeps one auxiliary map per member estimator, so the probe
    routes through ``estimator_for`` when the structure has one.
    """
    inner = _inner_structure(structure)
    member_of = getattr(inner, "estimator_for", None)
    if callable(member_of):
        try:
            inner = member_of(predicate)
        except Exception:
            return None
    elif predicate.kind != "subset":
        # A subset-only structure holds no overrides for other predicates.
        return None
    auxiliary = getattr(inner, "auxiliary", None)
    if auxiliary is None:
        return None
    return auxiliary.get(canonical)


def exact_answer(
    kind: str,
    exact: InvertedIndex,
    structure: Any,
    query: Any,
    predicate: Predicate | str | None = None,
) -> Any:
    """Exact answer mirroring the guarded facades' defined semantics.

    Shared by the threaded server's shed/degraded paths and the worker
    pool's shed-while-replica-down path, so every exact-path deployment
    answers identically: auxiliary overrides first, then the exact index,
    with the facades' defined empty/malformed semantics.  ``predicate``
    only changes cardinality answers (index/bloom are subset tasks).
    """
    predicate = as_predicate(predicate)
    canonical = canonical_query(query)
    if kind == "cardinality":
        if canonical is None:
            return 0.0
        if not canonical:
            return float(predicate.empty_query_count(exact.num_sets))
        override = _auxiliary_override_of(structure, canonical, predicate)
        if override is not None:
            return float(override)
        return float(exact.count_predicate(predicate, canonical))
    if kind == "index":
        if canonical is None:
            return None
        if not canonical:
            return 0 if exact.num_sets else None
        override = _auxiliary_override_of(structure, canonical)
        if override is not None:
            return int(override)
        return exact.first_position(canonical)
    if canonical is None:
        return False
    if not canonical:
        return exact.num_sets > 0
    if exact.contains(canonical):
        return True
    backup = _backup_filter(structure)
    return backup.contains_set(set(canonical)) if backup is not None else False


class SetServer:
    """Concurrent, batching, caching server over one learned structure.

    Parameters
    ----------
    structure:
        A learned structure or guarded facade; the task kind is detected
        from its type.
    policy:
        Micro-batching and admission-control knobs (:class:`BatchPolicy`).
    cache_size:
        LRU result-cache capacity (0 disables caching).
    exact:
        Exact :class:`InvertedIndex` used by the ``shed-to-exact`` overflow
        policy.  Optional when the structure is guarded (its paired exact
        index is reused) or is a :class:`LearnedSetIndex` (one is built
        from its collection); required otherwise for that policy.
    workload:
        Optional :class:`repro.adapt.WorkloadLog`.  Every well-formed
        submitted query is recorded (cache hits included — frequency is a
        property of the stream, not of the answer path), and when the
        log's ``observe_every`` sampling fires, the answer is scored
        against the exact structure and the observed q-error reported
        back.  Feeds the adaptive-refresh loop; ``None`` (the default)
        records nothing.
    degrade_after / degrade_window / degrade_probe_every:
        Graceful degradation under sustained model failure.  When the
        served structure is guarded and its exact fallback is available,
        the server watches the fallback fraction over sliding windows of
        ``degrade_window`` health-counted queries; once it reaches
        ``degrade_after`` the server *degrades*: new requests are answered
        on the caller's thread by the exact fallback path instead of
        queueing for a model that is failing every call.  While degraded,
        every ``degrade_probe_every``-th request still flows through the
        model path as a recovery probe; when the probed fallback fraction
        drops below ``degrade_after / 2`` the server un-degrades.
        ``degrade_after=None`` disables the mechanism.
    """

    def __init__(
        self,
        structure: Any,
        policy: BatchPolicy | None = None,
        cache_size: int = 1024,
        exact: InvertedIndex | None = None,
        tracer: Tracer | None = None,
        degrade_after: float | None = 0.95,
        degrade_window: int = 64,
        degrade_probe_every: int = 16,
        workload: Any = None,
    ):
        if degrade_after is not None and not 0.0 < degrade_after <= 1.0:
            raise ValueError("degrade_after must be in (0, 1] or None")
        if degrade_window < 1:
            raise ValueError("degrade_window must be >= 1")
        if degrade_probe_every < 2:
            raise ValueError("degrade_probe_every must be >= 2")
        self.kind = detect_kind(structure)
        self.policy = policy or BatchPolicy()
        self.stats = ServerStats()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.cache = QueryCache(cache_size)
        self._snapshots = SnapshotHolder(structure)
        if exact is None:
            exact = getattr(structure, "exact", None)
        if exact is None:
            # Index structures (unsharded or sharded) carry their
            # collection; an exact inverted index derives from it.
            collection = getattr(structure, "collection", None)
            if collection is not None:
                exact = InvertedIndex(collection)
        if exact is None and self.policy.overflow == "shed-to-exact":
            raise ValueError(
                "overflow='shed-to-exact' needs an exact InvertedIndex: pass "
                "exact=... or serve a guarded structure"
            )
        self._exact = exact
        # Optional served-stream recorder (repro.adapt.WorkloadLog); an
        # AdaptiveRefresher attaching later may install one here too.
        self.workload = workload
        # A mutation can change the answers of subset/superset queries too,
        # not just the exact key — the listener sweeps all related entries.
        self._listener = self.cache.invalidate_related
        # Set by a repro.maintain.BackgroundRefresher when auto-refresh is
        # enabled; the REFRESH protocol verb reports through it.
        self.maintainer = None
        self._degrade_after = degrade_after
        self._degrade_window = int(degrade_window)
        self._degrade_probe_every = int(degrade_probe_every)
        self._degrade_lock = threading.Lock()
        self._degraded = False
        self._degraded_count = 0
        self._degrade_activations = 0
        self._degraded_served = 0
        self._reset_degrade_marks(structure)
        self._attach_listener(structure)
        self._batcher = MicroBatcher(
            self._serve_batch,
            policy=self.policy,
            shed_fn=self._shed_answer if exact is not None else None,
            on_batch=self.stats.record_batch,
            on_shed=self.stats.record_shed,
            on_reject=self.stats.record_reject,
            tracer=self.tracer,
        )
        self._register_gauges()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SetServer":
        self._batcher.start()
        return self

    def close(self, timeout: float | None = 10.0) -> None:
        self._batcher.close(timeout)

    def __enter__(self) -> "SetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def running(self) -> bool:
        return self._batcher.running

    # -- structure access ------------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshots.current

    @property
    def structure(self) -> Any:
        return self._snapshots.current.structure

    def swap(self, structure: Any) -> Snapshot:
        """Atomically replace the serving structure (hot snapshot swap).

        The new structure must serve the same task kind.  Batches already
        dispatched finish on the old generation; the result cache is
        cleared because a retrained model answers every query differently.
        """
        if detect_kind(structure) != self.kind:
            raise TypeError(
                f"cannot swap a {detect_kind(structure)} structure into a "
                f"{self.kind} server"
            )
        self._detach_listener(self.structure)
        snapshot = self._snapshots.swap(structure)
        self._attach_listener(structure)
        self.cache.clear()
        # A swap installs a freshly trained generation with fresh health
        # counters; degradation state restarts from a clean slate.
        with self._degrade_lock:
            self._degraded = False
            self._degraded_count = 0
            self._reset_degrade_marks(structure)
        self.stats.record_swap()
        return snapshot

    def _attach_listener(self, structure: Any) -> None:
        inner = _inner_structure(structure)
        if hasattr(inner, "add_update_listener"):
            inner.add_update_listener(self._listener)

    def _detach_listener(self, structure: Any) -> None:
        inner = _inner_structure(structure)
        try:
            inner.remove_update_listener(self._listener)
        except (AttributeError, ValueError):
            pass

    # -- graceful degradation (sustained model failure) ------------------------

    def _reset_degrade_marks(self, structure: Any) -> None:
        health = getattr(structure, "health", None)
        if health is None:
            self._degrade_mark = (0, 0)
        else:
            self._degrade_mark = (health.queries, health.total_fallbacks)

    @property
    def degraded(self) -> bool:
        """True while the server answers through the exact fallback path."""
        return self._degraded

    @property
    def degrade_activations(self) -> int:
        return self._degrade_activations

    def _maybe_degrade(self) -> bool:
        """Advance the degradation state machine for one request.

        Returns ``True`` when this request must be served on the caller's
        thread by the exact fallback.  The decision reads the guarded
        structure's health counters, which are advanced by the dispatcher
        thread — evaluation therefore lags submission by roughly one
        batch, which is fine: degradation is a sustained-failure response,
        not a per-request routing decision.
        """
        if self._degrade_after is None or self._exact is None:
            return False
        health = getattr(self.structure, "health", None)
        if health is None:
            return False
        with self._degrade_lock:
            queries = health.queries
            fallbacks = health.total_fallbacks
            window = queries - self._degrade_mark[0]
            if self._degraded:
                # Probes keep flowing through the model path; once enough
                # of them have been health-counted, re-evaluate recovery.
                if window >= max(self._degrade_window // 4, 4):
                    fraction = (fallbacks - self._degrade_mark[1]) / window
                    self._degrade_mark = (queries, fallbacks)
                    if fraction < self._degrade_after / 2.0:
                        self._degraded = False
                        return False
                self._degraded_count += 1
                if self._degraded_count % self._degrade_probe_every == 0:
                    return False
                return True
            if window >= self._degrade_window:
                fraction = (fallbacks - self._degrade_mark[1]) / window
                self._degrade_mark = (queries, fallbacks)
                if fraction >= self._degrade_after:
                    self._degraded = True
                    self._degraded_count = 0
                    self._degrade_activations += 1
                    self._metric_degrade_activations.inc()
                    return True
            return False

    def _serve_degraded(self, item: tuple[str, Any], started: float) -> Future:
        """Answer on the caller's thread via the exact fallback path."""
        future: Future = Future()
        self._degraded_served += 1
        self._metric_degraded_served.inc()
        try:
            with self.tracer.span("degraded_exact", kind=self.kind):
                future.set_result(self._shed_answer_inner(item))
        except Exception as exc:
            future.set_exception(exc)
            self.stats.record_failed()
        else:
            self.stats.record_served(time.monotonic() - started)
        return future

    # -- querying --------------------------------------------------------------

    def supports_predicates(self) -> bool:
        """Whether the served structure routes the non-subset predicates."""
        if self.kind != "cardinality":
            return False
        structure = self.structure
        flag = getattr(structure, "supports_predicates", None)
        if flag is not None:
            return bool(flag)
        return hasattr(structure, "estimate_many_keyed")

    def submit(self, query: Iterable[int], predicate=None) -> Future:
        """Admit one query; returns a future resolving to its answer.

        Cache hits resolve immediately on the calling thread; misses are
        coalesced by the micro-batcher.  Overload outcomes (reject / shed)
        arrive through the future per the configured overflow policy.
        ``predicate`` selects the query semantics (cardinality servers
        whose structure routes the family); cache keys carry it, so the
        same canonical query under two predicates occupies two entries.
        """
        started = time.monotonic()
        predicate = as_predicate(predicate)
        if predicate.kind != "subset" and not self.supports_predicates():
            raise ValueError(
                f"this {self.kind} server cannot answer predicate "
                f"{predicate.spec!r}; serve a PredicateCardinalitySuite"
            )
        spec = predicate.spec
        self.stats.record_submitted()
        with self.tracer.span("encode", kind=self.kind):
            key = self._canonical(query)
        cache_key = (spec, key) if key is not None else None
        # Record before the cache check: frequency is a property of the
        # stream, and a hot cached key still deserves training weight.
        observe_due = (
            key is not None
            and self.workload is not None
            and self.workload.record(spec, key)
        )
        if key is not None:
            with self.tracer.span("cache_lookup") as span:
                found, value = self.cache.get(cache_key)
                span["attrs"]["hit"] = found
            if found:
                future: Future = Future()
                future.set_result(value)
                self.stats.record_served(time.monotonic() - started, from_cache=True)
                if observe_due:
                    self._observe_answer(spec, key, value)
                return future
            if self._maybe_degrade():
                # Degraded answers come from the exact path already; there
                # is no model error to observe, only frequency (recorded).
                return self._serve_degraded((spec, key), started)
        future = self._batcher.submit((spec, key if key is not None else query))

        def _resolved(f: Future) -> None:
            if f.cancelled() or f.exception() is not None:
                self.stats.record_failed()
                return
            if cache_key is not None:
                self.cache.put(cache_key, f.result())
            self.stats.record_served(time.monotonic() - started)
            if observe_due:
                self._observe_answer(spec, key, f.result())

        future.add_done_callback(_resolved)
        return future

    def query(
        self, query: Iterable[int], timeout: float | None = 30.0, predicate=None
    ) -> Any:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query, predicate=predicate).result(timeout)

    def query_many(
        self,
        queries: Sequence[Iterable[int]],
        timeout: float | None = 30.0,
        predicate=None,
    ) -> list[Any]:
        """Submit a client-side batch and gather the answers in order."""
        futures = [self.submit(q, predicate=predicate) for q in queries]
        return [future.result(timeout) for future in futures]

    # -- workload observation (sampled truth) -----------------------------------

    def _observe_answer(
        self, spec: str, key: tuple[int, ...], answer: Any
    ) -> None:
        """Score one served answer against exact truth into the workload log.

        Runs only when the log's ``observe_every`` sampling fires, so the
        exact intersection it costs is amortized over the stream.  Bloom
        answers have no graded error to observe; truth failures are
        swallowed — observation is telemetry, never a request-path hazard.
        """
        if self.workload is None or self._exact is None or self.kind == "bloom":
            return
        try:
            truth = exact_answer(
                self.kind, self._exact, self.structure, key, predicate=spec
            )
            if self.kind == "cardinality":
                error = float(q_error([float(answer)], [float(truth)])[0])
            elif answer is None and truth is None:
                error = 1.0
            elif answer is None or truth is None:
                # Missed an existing position (or found a phantom one):
                # maximal disagreement on the position axis.
                error = float(self._exact.num_sets) + 1.0
            else:
                # +1-shifted so position 0 is not floored away.
                error = float(
                    q_error([float(answer) + 1.0], [float(truth) + 1.0])[0]
                )
            self.workload.observe(spec, key, error)
        except Exception:
            pass

    # -- batched execution (dispatcher thread) ---------------------------------

    def _serve_batch(self, items: Sequence[tuple[str, Any]]) -> Sequence[Any]:
        # One snapshot read per batch: a concurrent swap never tears a
        # batch across generations.  Items are (predicate_spec, query)
        # pairs; one flush may interleave predicates, so keyed structures
        # get the pairs and plain ones (submit admits only subset for
        # them) get the bare queries.
        snapshot = self._snapshots.current
        structure = snapshot.structure
        with self.tracer.span(
            "model_forward",
            kind=self.kind,
            batch_size=len(items),
            snapshot_version=snapshot.version,
        ):
            queries = [query for _, query in items]
            if self.kind == "cardinality":
                if hasattr(structure, "estimate_many_keyed"):
                    return [
                        float(v) for v in structure.estimate_many_keyed(list(items))
                    ]
                return [float(v) for v in structure.estimate_many(queries)]
            if self.kind == "index":
                return list(structure.lookup_many(queries))
            return [bool(v) for v in structure.contains_many(queries)]

    # -- degraded serving (caller thread, shed-to-exact) -----------------------

    def _shed_answer(self, item: tuple[str, Any]) -> Any:
        """Exact answer mirroring the guarded facades' defined semantics."""
        with self.tracer.span("guard_fallback", kind=self.kind, shed=True):
            return self._shed_answer_inner(item)

    def _shed_answer_inner(self, item: tuple[str, Any]) -> Any:
        spec, query = item
        return exact_answer(
            self.kind, self._exact, self.structure, query, predicate=spec
        )

    # -- reporting --------------------------------------------------------------

    @property
    def registry(self):
        """The server's :class:`MetricsRegistry` (owned by its stats)."""
        return self.stats.registry

    def _register_gauges(self) -> None:
        """Expose cache / health / fan-out / training state on the registry.

        Everything is callback-backed and reads through ``self.structure``,
        so a hot snapshot swap automatically redirects the exposition to
        the new generation — no re-registration on swap.
        """
        reg = self.stats.registry
        reg.gauge_function(
            "repro_serve_snapshot_version",
            "Generation of the currently served snapshot",
            lambda: self.snapshot.version,
        )
        reg.gauge_function(
            "repro_serve_degraded",
            "1 while the server answers through the exact fallback path "
            "(sustained model failure)",
            lambda: 1.0 if self._degraded else 0.0,
        )
        self._metric_degrade_activations = reg.counter(
            "repro_serve_degrade_activations_total",
            "Times the server entered degraded (exact-fallback) serving",
        )
        self._metric_degraded_served = reg.counter(
            "repro_serve_degraded_served_total",
            "Requests answered by the exact fallback while degraded",
        )
        for field in ("capacity", "entries", "hits", "misses", "hit_rate",
                      "evictions", "invalidations", "invalidation_misses"):
            reg.gauge_function(
                f"repro_cache_{field}",
                f"Result cache {field.replace('_', ' ')}",
                lambda f=field: self.cache.as_dict()[f],
            )
        for field in ("queries", "model_answers", "fallbacks",
                      "short_circuits", "fallback_fraction"):
            reg.gauge_function(
                f"repro_health_{field}",
                f"Guarded-structure {field.replace('_', ' ')} "
                "(0 when the served structure is unguarded)",
                lambda f=field: self._health_stat(f),
            )
        for field in ("num_shards", "queries", "shard_calls"):
            reg.gauge_function(
                f"repro_shard_fanout_{field}",
                f"Sharded router fan-out {field.replace('_', ' ')} "
                "(0 when the served structure is unsharded)",
                lambda f=field: self._fanout_stat(f),
            )
        for field in ("final_loss", "total_seconds", "seconds_per_epoch",
                      "num_outliers", "num_training_subsets"):
            reg.gauge_function(
                f"repro_training_{field}",
                f"Last build's training {field.replace('_', ' ')} "
                "(from the served structure's build report)",
                lambda f=field: self._training_stat(f),
            )
        for field, help_text in (
            ("attached", "Structure parts serving through a frozen plan"),
            ("parts", "Structure parts in total (shards, or 1)"),
            ("hits", "Batches answered by attached frozen plans"),
            ("fallbacks", "Plan-routed calls that fell back to autograd"),
            ("bits", "Weight bits of the attached plans (mean across parts; "
                     "0 when no plan is attached)"),
            ("quant_delta", "Worst gated accuracy delta of the attached "
                            "plans (mean q-error minus 1, or flip fraction)"),
        ):
            reg.gauge_function(
                f"repro_infer_plan_{field}",
                f"{help_text} (reads through the served snapshot)",
                lambda f=field: self._infer_stat(f),
            )

    def _health_stat(self, field: str) -> float:
        health = getattr(self.structure, "health", None)
        if health is None:
            return 0.0
        if field == "fallbacks":
            return float(health.total_fallbacks)
        if field == "short_circuits":
            return float(health.total_short_circuits)
        return float(getattr(health, field))

    def _fanout_stat(self, field: str) -> float:
        inner = _inner_structure(self.structure)
        probe = getattr(inner, "fanout_stats", None)
        if probe is None:
            return 0.0
        return float(probe()[field])

    def _training_stat(self, field: str) -> float:
        """Aggregate build-report telemetry across shards (sum; loss: mean)."""
        inner = _inner_structure(self.structure)
        parts = getattr(inner, "parts", None)
        reports = []
        if parts is not None:
            for part in parts:
                report = getattr(_inner_structure(part), "report", None)
                if report is not None:
                    reports.append(report)
        else:
            report = getattr(inner, "report", None)
            if report is not None:
                reports.append(report)
        if not reports:
            return 0.0
        values = [float(getattr(report, field, 0.0)) for report in reports]
        if field in ("final_loss", "seconds_per_epoch"):
            return sum(values) / len(values)
        return sum(values)

    def _infer_stat(self, field: str) -> float:
        """Frozen-plan telemetry aggregated across the served parts."""
        inner = _inner_structure(self.structure)
        parts = getattr(inner, "parts", None)
        raw_parts = (
            [_inner_structure(part) for part in parts]
            if parts is not None
            else [inner]
        )
        plans = [
            plan
            for plan in (getattr(part, "infer_plan", None) for part in raw_parts)
            if plan is not None
        ]
        if field == "parts":
            return float(len(raw_parts))
        if field == "attached":
            return float(len(plans))
        if not plans:
            return 0.0
        if field == "hits":
            return float(sum(plan.hits for plan in plans))
        if field == "fallbacks":
            return float(sum(plan.fallbacks for plan in plans))
        if field == "bits":
            return float(sum(plan.bits for plan in plans)) / len(plans)
        if field == "quant_delta":
            deltas = []
            for plan in plans:
                metrics = plan.meta.get("gate_metrics") or {}
                if "flip_fraction" in metrics:
                    deltas.append(float(metrics["flip_fraction"]))
                elif "mean_qerror" in metrics:
                    deltas.append(float(metrics["mean_qerror"]) - 1.0)
            return max(deltas) if deltas else 0.0
        return 0.0

    def metrics_text(self) -> str:
        """The Prometheus-style exposition (the ``METRICS`` verb's body)."""
        return self.stats.registry.render_text()

    def trace_spans(self, limit: int | None = None) -> list[dict]:
        """Recent query-path spans from the server's tracer (oldest first)."""
        return self.tracer.snapshot(limit)

    def stats_dict(self) -> dict:
        """Full telemetry snapshot, health counters folded in when guarded."""
        health = getattr(self.structure, "health", None)
        out = self.stats.as_dict(cache=self.cache, health=health)
        out["kind"] = self.kind
        out["snapshot_version"] = self.snapshot.version
        out["degraded"] = self._degraded
        out["degrade_activations"] = self._degrade_activations
        out["degraded_served"] = self._degraded_served
        fanout = getattr(_inner_structure(self.structure), "fanout_stats", None)
        if fanout is not None:
            out["shard_fanout"] = fanout()
        return out

    _canonical = staticmethod(canonical_query)
