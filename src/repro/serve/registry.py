"""`PlanRegistry`: generation-versioned shared-memory plan publication.

The worker-pool serving tier keeps frozen :class:`InferencePlan` weights in
named ``multiprocessing.shared_memory`` segments so every worker process
serves through the *same* physical pages (see :mod:`repro.infer.shm`).
This registry is the publisher side: it owns the segments, versions them
by **generation**, and guarantees two things a naive implementation tears
up under refresh traffic:

* **atomic generation swap** — a new generation's segments are fully
  created and written *before* the registry's current pointer flips, so a
  reader can never attach a half-written generation (the exact analogue
  of :class:`~repro.serve.snapshot.SnapshotHolder`'s swap guarantee, one
  level down);
* **refcounted unlink** — retiring a generation (because a refresh
  published a newer one) defers the ``unlink`` until every reader that
  acquired it has released it, so a worker finishing a batch on the old
  generation never reads unmapped pages, and nothing leaks: once the last
  reader releases, the name disappears from ``/dev/shm``.

Ownership is strictly single-process: only the registry (the front-end /
publisher process) ever unlinks.  Workers attach by name through
:func:`repro.infer.shm.attach_segment`, which exempts the attach from
their ``resource_tracker`` so a worker crash cannot destroy a live
generation.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..infer.shm import ShmSegment, create_segment

__all__ = ["PlanGeneration", "PlanRegistry", "RegistryError"]


class RegistryError(RuntimeError):
    """A publication or refcount operation was invalid."""


@dataclass
class PlanGeneration:
    """One published generation: named segments plus reader bookkeeping."""

    generation: int
    #: One entry per structure part; ``None`` for parts without a plan.
    names: list[str | None]
    #: Weight versions of the plans, aligned with ``names`` (None gaps).
    weights_versions: list[int | None]
    segments: list[ShmSegment] = field(default_factory=list)
    readers: int = 0
    retired: bool = False
    unlinked: bool = False

    @property
    def segment_names(self) -> list[str]:
        return [name for name in self.names if name is not None]

    def as_dict(self) -> dict:
        return {
            "generation": self.generation,
            "names": list(self.names),
            "weights_versions": list(self.weights_versions),
            "readers": self.readers,
            "retired": self.retired,
            "unlinked": self.unlinked,
            "bytes": sum(segment.size for segment in self.segments),
        }


class PlanRegistry:
    """Owns the shared-memory segments behind the pool's plan generations.

    Parameters
    ----------
    prefix:
        Segment-name prefix; defaults to a per-process unique token (kept
        short — POSIX shm names are limited to 31 bytes on some
        platforms).  The hygiene tests enumerate ``/dev/shm`` by this
        prefix to prove nothing leaks.
    """

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix or f"rp{os.getpid():x}{secrets.token_hex(3)}"
        self._lock = threading.Lock()
        self._generations: dict[int, PlanGeneration] = {}
        self._current: PlanGeneration | None = None
        self._next_generation = 1
        self._closed = False
        self.publishes = 0
        self.unlinks = 0

    # -- publication -----------------------------------------------------------

    def publish(
        self, arrays_per_part: Sequence[dict[str, np.ndarray] | None],
        weights_versions: Sequence[int | None] | None = None,
    ) -> PlanGeneration:
        """Publish one generation of plan arrays (one entry per part).

        All segments are created and fully written before the current
        pointer flips; the previous generation is retired (unlinked as
        soon as its last reader releases — immediately when it has none).
        """
        with self._lock:
            if self._closed:
                raise RegistryError("registry is closed")
            generation = self._next_generation
            self._next_generation += 1
        if weights_versions is None:
            weights_versions = [None] * len(arrays_per_part)
        segments: list[ShmSegment] = []
        names: list[str | None] = []
        try:
            for part_index, arrays in enumerate(arrays_per_part):
                if arrays is None:
                    names.append(None)
                    continue
                name = f"{self.prefix}-g{generation}-p{part_index}"
                segments.append(create_segment(name, arrays))
                names.append(name)
        except Exception:
            # Half-built generations must never leak nor become current.
            for segment in segments:
                segment.close()
                segment.unlink()
            raise
        record = PlanGeneration(
            generation=generation,
            names=names,
            weights_versions=[
                None if v is None else int(v) for v in weights_versions
            ],
            segments=segments,
        )
        with self._lock:
            if self._closed:
                for segment in segments:
                    segment.close()
                    segment.unlink()
                raise RegistryError("registry closed during publish")
            previous = self._current
            self._generations[generation] = record
            self._current = record  # the atomic flip
            self.publishes += 1
            if previous is not None:
                previous.retired = True
                self._maybe_unlink(previous)
        return record

    # -- reader refcounting ----------------------------------------------------

    @property
    def current(self) -> PlanGeneration | None:
        return self._current

    @property
    def generation(self) -> int:
        current = self._current
        return current.generation if current is not None else 0

    def acquire(self, generation: int | None = None) -> PlanGeneration | None:
        """Register a reader on a generation (default: current).

        Returns the acquired record, or ``None`` when nothing is
        published yet.  The generation will not be unlinked until the
        matching :meth:`release`.
        """
        with self._lock:
            record = (
                self._current
                if generation is None
                else self._generations.get(generation)
            )
            if record is None:
                if generation is not None:
                    raise RegistryError(f"unknown generation {generation}")
                return None
            if record.unlinked:
                raise RegistryError(
                    f"generation {record.generation} is already unlinked"
                )
            record.readers += 1
            return record

    def release(self, generation: int) -> None:
        """Drop one reader; unlinks a retired generation at refcount zero."""
        with self._lock:
            record = self._generations.get(generation)
            if record is None:
                return
            if record.readers <= 0:
                raise RegistryError(
                    f"generation {generation} released more than acquired"
                )
            record.readers -= 1
            self._maybe_unlink(record)

    def _maybe_unlink(self, record: PlanGeneration) -> None:
        # Caller holds the lock.
        if record.retired and record.readers == 0 and not record.unlinked:
            record.unlinked = True
            for segment in record.segments:
                segment.close()
                segment.unlink()
            self.unlinks += 1
            self._generations.pop(record.generation, None)

    # -- reporting / shutdown --------------------------------------------------

    def live_segment_names(self) -> list[str]:
        """Every segment name still linked (across all generations)."""
        with self._lock:
            return sorted(
                name
                for record in self._generations.values()
                if not record.unlinked
                for name in record.segment_names
            )

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "prefix": self.prefix,
                "generation": self.generation,
                "publishes": self.publishes,
                "unlinks": self.unlinks,
                "live_segments": sum(
                    len(record.segment_names)
                    for record in self._generations.values()
                    if not record.unlinked
                ),
                "generations": [
                    record.as_dict()
                    for record in sorted(
                        self._generations.values(), key=lambda r: r.generation
                    )
                ],
            }

    def close(self) -> None:
        """Unlink everything (shutdown path; ignores refcounts).

        POSIX keeps existing mappings valid after unlink, so a worker
        mid-batch at shutdown finishes on its mapping; the names are gone
        immediately — nothing can leak past close.
        """
        with self._lock:
            self._closed = True
            for record in self._generations.values():
                if not record.unlinked:
                    record.unlinked = True
                    for segment in record.segments:
                        segment.close()
                        segment.unlink()
                    self.unlinks += 1
            self._generations.clear()
            self._current = None

    def __enter__(self) -> "PlanRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
