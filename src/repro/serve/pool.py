"""`WorkerPool`: the multi-process serving tier.

N worker processes each hold a full replica of the served structure and
answer query batches through a per-worker :class:`SetServer` core — the
same admission control, micro-batching, caching, stats, and METRICS/TRACE
surfaces as the threaded tier, but with real process-level parallelism
behind them.  Frozen :class:`~repro.infer.plan.InferencePlan` weights are
never duplicated per worker: the pool publishes them once into named
shared-memory segments through a :class:`~repro.serve.registry.PlanRegistry`
and workers attach zero-copy views (:mod:`repro.infer.shm`).

Layout of responsibilities:

* the **front-end process** owns the master structure (the mutation source
  of truth), the plan registry, routing, health tracking, and the shed
  path; it never runs model forwards for routed queries;
* each **worker process** unpickles a plan-stripped replica, attaches the
  published plan segments, and serves through its own ``SetServer``;
* requests are routed by **consistent hashing** of the canonical query, so
  each worker's result cache sees a stable slice of the keyspace and a
  respawned worker inherits exactly its predecessor's slice;
* **snapshot swaps** (:meth:`WorkerPool.swap`) publish a new plan
  generation into the registry, then broadcast the new replica to workers;
  a worker finishes its in-flight batches on the old generation before
  detaching it (pipe messages are handled in arrival order, and the old
  segments are closed only after a barrier request drains the dispatcher),
  and the registry unlinks the old generation only after every worker has
  released it — the cross-process analogue of the single-process
  torn-snapshot-free guarantee;
* a **dead worker** (crash, SIGKILL) is detected by its broken pipe and a
  liveness monitor; its in-flight requests fail over to the exact shed
  path (or a defined :class:`PoolError`), its plan-generation refcount is
  released, and it is respawned from a fresh pickle of the master — so a
  respawn also replays every mutation the dead replica had absorbed.

The pool duck-types the surface :class:`~repro.maintain.BackgroundRefresher`
expects of a server (``structure`` / ``swap`` / ``kind`` / ``registry`` /
``tracer`` / ``snapshot`` / ``maintainer``), so background refresh drives
the whole pool exactly as it drives one threaded server.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import pickle
import signal
import threading
import time
from bisect import bisect_right
from concurrent.futures import Future
from hashlib import blake2b
from typing import Any, Iterable, Sequence

from ..core.qerror import q_error
from ..infer.freeze import _raw_parts
from ..infer.shm import attach_plan
from ..obs.metrics import MetricsRegistry, merge_expositions
from ..obs.trace import Tracer, get_tracer
from ..sets.inverted import InvertedIndex
from ..sets.predicates import as_predicate
from .batcher import BatchPolicy
from .registry import PlanRegistry
from .server import SetServer, canonical_query, detect_kind, exact_answer
from .snapshot import Snapshot, SnapshotHolder

__all__ = ["PoolError", "WorkerPool"]

#: Structure-level mutation ops a pool accepts, per task kind.
_MUTATION_OPS = {
    "record_update": "cardinality",
    "insert_update": "index",
    "insert": "bloom",
}


class PoolError(RuntimeError):
    """A pool-level serving failure (defined error, never a silent drop)."""


# -- consistent-hash ring ------------------------------------------------------


def _hash64(data: bytes) -> int:
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class _HashRing:
    """Consistent-hash ring over worker indices (``vnodes`` points each).

    Routing is a pure function of the query key and the worker *count* —
    independent of which workers are currently alive — so a respawned
    worker resumes exactly the keyspace slice its predecessor served and
    every front-end thread routes identically without coordination.
    """

    def __init__(self, workers: int, vnodes: int = 32):
        points = sorted(
            (_hash64(f"{worker}:{vnode}".encode()), worker)
            for worker in range(workers)
            for vnode in range(vnodes)
        )
        self._hashes = [point[0] for point in points]
        self._workers = [point[1] for point in points]

    def route(self, key: bytes) -> int:
        slot = bisect_right(self._hashes, _hash64(key)) % len(self._workers)
        return self._workers[slot]


# -- replica serialization -----------------------------------------------------


def _pickle_replica(structure: Any, exact: InvertedIndex | None) -> bytes:
    """Pickle ``(structure, exact)`` with attached plans stripped.

    Plans travel through shared memory, not through the pickle — workers
    re-attach them from the published segment names, so the (potentially
    large) frozen tables cross the process boundary exactly once.
    """
    raws = _raw_parts(structure)
    plans = [getattr(raw, "infer_plan", None) for raw in raws]
    try:
        for raw in raws:
            raw.infer_plan = None
        return pickle.dumps((structure, exact), protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for raw, plan in zip(raws, plans):
            raw.infer_plan = plan


def _plan_payload(structure: Any) -> tuple[list[dict | None], list[int | None]]:
    """Per-part plan arrays and weight versions for registry publication."""
    arrays: list[dict | None] = []
    versions: list[int | None] = []
    for raw in _raw_parts(structure):
        plan = getattr(raw, "infer_plan", None)
        if plan is None:
            arrays.append(None)
            versions.append(None)
        else:
            arrays.append(plan.to_arrays())
            versions.append(plan.weights_version)
    return arrays, versions


def _materialize_replica(
    blob: bytes, names: Sequence[str | None], untrack: bool
) -> tuple[Any, InvertedIndex | None, list]:
    """Worker side: unpickle the replica and attach published plans.

    ``untrack`` follows the start method: a *forked* worker shares the
    publisher's resource tracker and must leave its bookkeeping alone; a
    *spawned* worker has its own tracker, which must be told it does not
    own the attached segments (or its exit would unlink a live
    generation).
    """
    structure, exact = pickle.loads(blob)
    segments = []
    raws = _raw_parts(structure)
    for raw, name in zip(raws, names):
        if name is None:
            continue
        segment, plan = attach_plan(name, untrack=untrack)
        raw.attach_plan(plan)
        segments.append(segment)
    return structure, exact, segments


def _send_error(exc: Exception) -> tuple:
    """Wire form of an exception: pickled when possible, else name+text."""
    try:
        return ("err", pickle.dumps(exc), type(exc).__name__, str(exc))
    except Exception:
        return ("err", None, type(exc).__name__, str(exc))


def _revive_error(payload: tuple) -> Exception:
    _tag, blob, name, message = payload
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, Exception):
                return exc
        except Exception:
            pass
    exc_type = getattr(builtins, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        try:
            return exc_type(message)
        except Exception:
            pass
    return PoolError(f"{name}: {message}")


# -- worker process ------------------------------------------------------------


def _pool_worker_main(
    conn,
    blob: bytes,
    names: Sequence[str | None],
    generation: int,
    policy: BatchPolicy | None,
    cache_size: int,
    worker_index: int,
    untrack: bool,
) -> None:
    """One worker: a ``SetServer`` replica behind a duplex pipe.

    The loop is single-threaded on purpose: a ``publish`` (snapshot swap)
    is handled strictly after the batch messages that arrived before it,
    and the old generation's segments are closed only once a barrier
    request has drained every batch dispatched against them — a reader
    attached to the old generation always finishes its batch before the
    publisher's unlink can take effect.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    structure, exact, segments = _materialize_replica(blob, names, untrack)
    server = SetServer(
        structure, policy=policy, cache_size=cache_size, exact=exact
    ).start()
    del structure

    def _barrier() -> None:
        # An empty query has defined semantics for every kind; its only
        # job is to ride the dispatcher FIFO behind the in-flight batches.
        try:
            server.submit(()).result(timeout=30.0)
        except Exception:
            pass

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            verb = message[0]
            if verb == "batch":
                futures = []
                for rid, spec, query in message[1]:
                    try:
                        # submit can raise synchronously (e.g. a predicate
                        # the structure does not route); that is this
                        # request's defined error, not a replica death.
                        futures.append((rid, server.submit(query, predicate=spec)))
                    except Exception as exc:
                        failed: Future = Future()
                        failed.set_exception(exc)
                        futures.append((rid, failed))
                replies = []
                for rid, future in futures:
                    try:
                        replies.append((rid, ("ok", future.result(timeout=30.0))))
                    except Exception as exc:
                        replies.append((rid, _send_error(exc)))
                conn.send(("batch", replies))
            elif verb == "ctl":
                _rid, ctl, payload = message[1], message[2], message[3]
                try:
                    if ctl == "mutate":
                        op, args = payload
                        getattr(server.structure, op)(*args)
                        reply = ("ok", None)
                    elif ctl == "publish":
                        new_blob, new_names, new_generation = payload
                        new_structure, _exact, new_segments = (
                            _materialize_replica(new_blob, new_names, untrack)
                        )
                        server.swap(new_structure)
                        _barrier()
                        for segment in segments:
                            segment.close()
                        segments = new_segments
                        generation = new_generation
                        reply = ("ok", generation)
                    elif ctl == "stats":
                        reply = ("ok", server.stats_dict())
                    elif ctl == "metrics":
                        reply = ("ok", server.metrics_text())
                    elif ctl == "trace":
                        reply = ("ok", server.trace_spans(payload))
                    elif ctl == "ping":
                        reply = ("ok", {"worker": worker_index,
                                        "generation": generation})
                    elif ctl == "stop":
                        conn.send(("ctl", _rid, ("ok", None)))
                        break
                    else:
                        reply = _send_error(PoolError(f"unknown ctl {ctl!r}"))
                except Exception as exc:
                    reply = _send_error(exc)
                if ctl != "stop":
                    conn.send(("ctl", _rid, reply))
    finally:
        try:
            server.close(timeout=5.0)
        finally:
            # Drop every replica reference before closing the mappings, so
            # the plan views become collectible and the unmap is clean.
            server = None
            import gc

            gc.collect()
            for segment in segments:
                segment.close()
            try:
                conn.close()
            except OSError:
                pass


# -- front-end -----------------------------------------------------------------


class _WorkerSlot:
    """Front-end bookkeeping for one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.receiver = None
        self.alive = False
        self.stopping = False
        self.generation = 0
        self.respawns = 0
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        #: rid -> (future, query) for batches; rid -> (future, None) for ctl.
        self.pending: dict[int, tuple[Future, Any]] = {}


class WorkerPool:
    """Multi-process serving tier over one learned structure.

    Parameters
    ----------
    structure:
        The structure to serve (learned, guarded, or sharded).  The
        front-end keeps it as the *master* replica: mutations apply here
        first, workers replay them, and respawns re-pickle it — so a
        crashed replica can never forget a mutation.
    workers:
        Worker process count (>= 1).
    policy / cache_size:
        Per-worker :class:`SetServer` knobs (admission control included).
    exact:
        Exact index for the shed path; derived like :class:`SetServer`
        derives it when omitted.
    start_method:
        ``multiprocessing`` start method (default: the platform default).
    health_interval_s:
        Liveness-monitor poll period.
    max_respawns:
        Per-worker respawn budget (``None``: unlimited).  An exhausted
        slot stays down and its keyspace slice is shed to exact.
    workload:
        Optional :class:`repro.adapt.WorkloadLog` recording the routed
        stream on the front-end (same contract as :class:`SetServer`'s
        ``workload``); sampled answers are scored against the master's
        exact structure.
    """

    def __init__(
        self,
        structure: Any,
        workers: int = 2,
        policy: BatchPolicy | None = None,
        cache_size: int = 1024,
        exact: InvertedIndex | None = None,
        tracer: Tracer | None = None,
        start_method: str | None = None,
        health_interval_s: float = 0.25,
        max_respawns: int | None = None,
        registry_prefix: str | None = None,
        spawn_timeout_s: float = 60.0,
        publish_timeout_s: float = 60.0,
        workload: Any = None,
    ):
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self.kind = detect_kind(structure)
        self.policy = policy or BatchPolicy()
        self.cache_size = int(cache_size)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.plan_registry = PlanRegistry(prefix=registry_prefix)
        self._snapshots = SnapshotHolder(structure)
        if exact is None:
            exact = getattr(structure, "exact", None)
        if exact is None:
            collection = getattr(structure, "collection", None)
            if collection is not None:
                exact = InvertedIndex(collection)
        self._exact = exact
        self.workload = workload
        self.maintainer = None
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        # Forked workers share the publisher's resource tracker; spawned
        # workers own one and must untrack attaches (see attach_segment).
        self._untrack = self._ctx.get_start_method() != "fork"
        self._ring = _HashRing(workers)
        self._slots = [_WorkerSlot(index) for index in range(workers)]
        self._rids = itertools.count(1)
        self._swap_lock = threading.RLock()
        self._closing = threading.Event()
        self._monitor = None
        self._health_interval_s = float(health_interval_s)
        self._max_respawns = max_respawns
        self._spawn_timeout_s = float(spawn_timeout_s)
        self._publish_timeout_s = float(publish_timeout_s)
        self.registry = MetricsRegistry()
        self._register_metrics()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Publish the initial plan generation and spawn every worker."""
        with self._swap_lock:
            arrays, versions = _plan_payload(self.structure)
            record = self.plan_registry.publish(arrays, versions)
            blob = _pickle_replica(self.structure, self._exact)
            for slot in self._slots:
                self._spawn(slot, blob, record.names, record.generation)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="pool-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, join them, and unlink every plan segment."""
        if self._closing.is_set():
            return
        self._closing.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
        for slot in self._slots:
            with slot.lock:
                slot.stopping = True
                alive = slot.alive
            if alive:
                try:
                    self._ctl(slot, "stop", None).result(timeout=timeout)
                except Exception:
                    pass
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeout)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
            with slot.lock:
                slot.alive = False
                self._fail_over_locked(slot)
        self.plan_registry.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def running(self) -> bool:
        return not self._closing.is_set() and any(
            slot.alive for slot in self._slots
        )

    @property
    def num_workers(self) -> int:
        return len(self._slots)

    @property
    def workers_alive(self) -> int:
        return sum(1 for slot in self._slots if slot.alive)

    # -- structure access ------------------------------------------------------

    @property
    def snapshot(self) -> Snapshot:
        return self._snapshots.current

    @property
    def structure(self) -> Any:
        return self._snapshots.current.structure

    def swap(self, structure: Any) -> Snapshot:
        """Publish a new generation and roll every worker onto it.

        The registry flip is atomic and the old generation is unlinked
        only once the last worker has acked the new one — a worker
        mid-batch keeps valid mappings throughout (and closes them only
        after its dispatcher drains; see :func:`_pool_worker_main`).
        """
        if detect_kind(structure) != self.kind:
            raise TypeError(
                f"cannot swap a {detect_kind(structure)} structure into a "
                f"{self.kind} pool"
            )
        with self._swap_lock:
            arrays, versions = _plan_payload(structure)
            record = self.plan_registry.publish(arrays, versions)
            blob = _pickle_replica(structure, self._exact)
            snapshot = self._snapshots.swap(structure)
            pending = []
            for slot in self._slots:
                with slot.lock:
                    if not slot.alive:
                        continue
                self.plan_registry.acquire(record.generation)
                payload = (blob, record.names, record.generation)
                pending.append((slot, self._ctl(slot, "publish", payload)))
            for slot, future in pending:
                try:
                    future.result(timeout=self._publish_timeout_s)
                except Exception:
                    # The worker never acked the new generation; drop our
                    # reservation for it and recycle the worker — the
                    # respawn attaches the current generation cleanly.
                    self.plan_registry.release(record.generation)
                    self._kill_worker(slot)
                    continue
                with slot.lock:
                    previous, slot.generation = (
                        slot.generation, record.generation
                    )
                if previous:
                    self.plan_registry.release(previous)
            self._metric_swaps.inc()
        return snapshot

    # -- querying --------------------------------------------------------------

    def supports_predicates(self) -> bool:
        """Whether the replicated structure routes the non-subset predicates."""
        if self.kind != "cardinality":
            return False
        flag = getattr(self.structure, "supports_predicates", None)
        if flag is not None:
            return bool(flag)
        return hasattr(self.structure, "estimate_many_keyed")

    def submit(self, query: Iterable[int], predicate=None) -> Future:
        """Admit one query; returns a future resolving to its answer."""
        return self.submit_many([query], predicate=predicate)[0]

    def submit_many(
        self, queries: Sequence[Iterable[int]], predicate=None
    ) -> list[Future]:
        """Admit a client batch: route, group per worker, send one message
        per worker.  Queries routed to a down worker shed to the exact
        path immediately (or resolve to a defined :class:`PoolError`).
        ``predicate`` rides the batch message, so every replica answers —
        and caches — under the same ``(predicate, canonical)`` key the
        threaded tier uses."""
        spec = as_predicate(predicate).spec
        if spec != "subset" and not self.supports_predicates():
            raise ValueError(
                f"this {self.kind} pool cannot answer predicate "
                f"{spec!r}; serve a PredicateCardinalitySuite"
            )
        futures: list[Future] = []
        grouped: dict[int, list[tuple[int, Any, Future]]] = {}
        for query in queries:
            future: Future = Future()
            futures.append(future)
            self._metric_requests.inc()
            canonical = canonical_query(query)
            if canonical is not None and self.workload is not None:
                # Front-end recording covers every routed query, including
                # ones a replica answers from its own cache.
                if self.workload.record(spec, canonical):
                    future.add_done_callback(
                        lambda f, s=spec, c=canonical: self._observe_answer(s, c, f)
                    )
            routed = canonical if canonical is not None else query
            # Subset keys keep their historical shape so the ring routes
            # existing traffic identically across upgrades.
            key = repr(routed if spec == "subset" else (spec, routed)).encode()
            slot = self._slots[self._ring.route(key)]
            if not slot.alive or self._closing.is_set():
                self._resolve_shed(future, (spec, query))
                continue
            grouped.setdefault(slot.index, []).append(
                (next(self._rids), query, future)
            )
        for index, entries in grouped.items():
            slot = self._slots[index]
            with slot.lock:
                if not slot.alive:
                    for _rid, query, future in entries:
                        self._resolve_shed(future, (spec, query))
                    continue
                for rid, query, future in entries:
                    slot.pending[rid] = (future, (spec, query))
            try:
                with slot.send_lock:
                    slot.conn.send(
                        ("batch", [(rid, spec, query) for rid, query, _f in entries])
                    )
            except (OSError, ValueError):
                self._on_worker_down(slot)
        return futures

    def query(
        self, query: Iterable[int], timeout: float | None = 30.0, predicate=None
    ) -> Any:
        return self.submit(query, predicate=predicate).result(timeout)

    def query_many(
        self,
        queries: Sequence[Iterable[int]],
        timeout: float | None = 30.0,
        predicate=None,
    ) -> list[Any]:
        return [
            future.result(timeout)
            for future in self.submit_many(queries, predicate=predicate)
        ]

    def _observe_answer(
        self, spec: str, canonical: tuple[int, ...], future: Future
    ) -> None:
        """Score one resolved answer against exact truth (sampled).

        Runs on the receiver thread via a done callback; mirrors
        :meth:`SetServer._observe_answer`'s scoring.  Telemetry only —
        any failure is swallowed.
        """
        if self._exact is None or self.kind == "bloom":
            return
        if future.cancelled() or future.exception() is not None:
            return
        try:
            answer = future.result()
            truth = exact_answer(
                self.kind, self._exact, self.structure, canonical,
                predicate=spec,
            )
            if self.kind == "cardinality":
                error = float(q_error([float(answer)], [float(truth)])[0])
            elif answer is None and truth is None:
                error = 1.0
            elif answer is None or truth is None:
                error = float(self._exact.num_sets) + 1.0
            else:
                error = float(
                    q_error([float(answer) + 1.0], [float(truth) + 1.0])[0]
                )
            self.workload.observe(spec, canonical, error)
        except Exception:
            pass

    def _resolve_shed(self, future: Future, item: tuple[str, Any]) -> None:
        """Answer on the exact path (replica down / pool draining)."""
        spec, query = item
        self._metric_sheds.inc()
        if self._exact is None:
            future.set_exception(
                PoolError(
                    "worker unavailable and no exact fallback is configured"
                )
            )
            return
        try:
            with self.tracer.span("pool_shed_exact", kind=self.kind):
                future.set_result(
                    exact_answer(
                        self.kind, self._exact, self.structure, query,
                        predicate=spec,
                    )
                )
        except Exception as exc:
            future.set_exception(exc)

    # -- mutations -------------------------------------------------------------

    def record_update(self, subset: Iterable[int], value: float) -> None:
        """Cardinality update (§6): master first, then every replica."""
        self._mutate("record_update", (tuple(subset), value))

    def insert_update(self, subset: Iterable[int], position: int) -> None:
        """Index update: master first, then every replica."""
        self._mutate("insert_update", (tuple(subset), position))

    def insert(self, subset: Iterable[int]) -> None:
        """Bloom insert: master first, then every replica."""
        self._mutate("insert", (tuple(subset),))

    def _mutate(self, op: str, args: tuple) -> None:
        if _MUTATION_OPS[op] != self.kind:
            raise TypeError(f"{op} is not a {self.kind} mutation")
        with self._swap_lock:
            # Master first: it is the respawn source of truth, and its
            # validation errors must surface before any replica diverges.
            getattr(self.structure, op)(*args)
            pending = []
            for slot in self._slots:
                with slot.lock:
                    if not slot.alive:
                        continue  # its respawn re-pickles the mutated master
                pending.append((slot, self._ctl(slot, "mutate", (op, args))))
            errors = []
            for slot, future in pending:
                try:
                    future.result(timeout=self._publish_timeout_s)
                except Exception as exc:
                    errors.append((slot.index, exc))
            self._metric_mutations.inc()
        if errors:
            raise PoolError(
                "replica mutation failed on worker(s) "
                + ", ".join(f"{index} ({exc})" for index, exc in errors)
            )

    # -- worker plumbing -------------------------------------------------------

    def _spawn(
        self,
        slot: _WorkerSlot,
        blob: bytes,
        names: Sequence[str | None],
        generation: int,
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                child_conn, blob, list(names), generation,
                self.policy, self.cache_size, slot.index, self._untrack,
            ),
            name=f"repro-pool-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if generation:
            self.plan_registry.acquire(generation)
        with slot.lock:
            slot.process = process
            slot.conn = parent_conn
            slot.generation = generation
            slot.alive = True
            slot.stopping = False
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(slot, parent_conn),
            name=f"pool-recv-{slot.index}",
            daemon=True,
        )
        slot.receiver = receiver
        receiver.start()
        # The worker is counted alive only once it answers: a replica
        # that dies while unpickling or attaching plans fails here, not
        # at first query.
        self._ctl(slot, "ping", None).result(timeout=self._spawn_timeout_s)

    def _receive_loop(self, slot: _WorkerSlot, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "batch":
                for rid, reply in message[1]:
                    self._resolve(slot, rid, reply)
            else:
                _kind, rid, reply = message
                self._resolve(slot, rid, reply)
        with slot.lock:
            stopping = slot.stopping
        if not stopping and not self._closing.is_set():
            self._on_worker_down(slot)

    def _resolve(self, slot: _WorkerSlot, rid: int, reply: tuple) -> None:
        with slot.lock:
            entry = slot.pending.pop(rid, None)
        if entry is None:
            return
        future, _query = entry
        if reply[0] == "ok":
            self._metric_served.inc()
            future.set_result(reply[1])
        else:
            self._metric_failed.inc()
            future.set_exception(_revive_error(reply))

    def _ctl(self, slot: _WorkerSlot, verb: str, payload: Any) -> Future:
        rid = next(self._rids)
        future: Future = Future()
        with slot.lock:
            if not slot.alive and verb != "stop":
                future.set_exception(
                    PoolError(f"worker {slot.index} is not running")
                )
                return future
            slot.pending[rid] = (future, None)
        try:
            with slot.send_lock:
                slot.conn.send(("ctl", rid, verb, payload))
        except (OSError, ValueError) as exc:
            with slot.lock:
                slot.pending.pop(rid, None)
            if not future.done():
                future.set_exception(
                    PoolError(f"worker {slot.index} pipe closed ({exc})")
                )
        return future

    def _monitor_loop(self) -> None:
        while not self._closing.wait(self._health_interval_s):
            for slot in self._slots:
                process = slot.process
                if slot.alive and process is not None and not process.is_alive():
                    self._on_worker_down(slot)

    def _kill_worker(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._on_worker_down(slot)

    def _on_worker_down(self, slot: _WorkerSlot) -> None:
        """Fail over a dead worker's requests and respawn it."""
        with slot.lock:
            if not slot.alive:
                return
            slot.alive = False
            generation = slot.generation
            slot.generation = 0
            self._fail_over_locked(slot)
        if generation:
            self.plan_registry.release(generation)
        self._metric_deaths.inc()
        if self._closing.is_set() or slot.stopping:
            return
        if (
            self._max_respawns is not None
            and slot.respawns >= self._max_respawns
        ):
            return
        slot.respawns += 1
        self._metric_respawns.inc()
        try:
            with self._swap_lock:
                # Re-pickle the *current* master: the fresh replica starts
                # with every mutation and the latest generation applied.
                record = self.plan_registry.current
                names = record.names if record is not None else []
                generation = record.generation if record is not None else 0
                blob = _pickle_replica(self.structure, self._exact)
                self._spawn(slot, blob, names, generation)
        except Exception:
            with slot.lock:
                slot.alive = False

    def _fail_over_locked(self, slot: _WorkerSlot) -> None:
        """Resolve every pending request of a dead worker (slot locked).

        Queries shed to the exact path; ctl waiters get a defined error.
        No request is ever silently dropped.
        """
        pending, slot.pending = slot.pending, {}
        for future, item in pending.values():
            if future.done():
                continue
            if item is None:
                future.set_exception(
                    PoolError(f"worker {slot.index} died before acking")
                )
            else:
                self._resolve_shed(future, item)

    # -- reporting -------------------------------------------------------------

    def _register_metrics(self) -> None:
        reg = self.registry
        self._metric_requests = reg.counter(
            "repro_pool_requests_total", "Queries admitted by the pool"
        )
        self._metric_served = reg.counter(
            "repro_pool_served_total", "Queries answered by worker replicas"
        )
        self._metric_failed = reg.counter(
            "repro_pool_failed_total",
            "Queries whose worker answer was an error",
        )
        self._metric_sheds = reg.counter(
            "repro_pool_shed_total",
            "Queries answered on the exact path because a replica was down",
        )
        self._metric_deaths = reg.counter(
            "repro_pool_worker_deaths_total", "Worker processes lost"
        )
        self._metric_respawns = reg.counter(
            "repro_pool_respawns_total", "Worker processes respawned"
        )
        self._metric_swaps = reg.counter(
            "repro_pool_swaps_total", "Snapshot generations rolled out"
        )
        self._metric_mutations = reg.counter(
            "repro_pool_mutations_total", "Mutations broadcast to replicas"
        )
        reg.gauge_function(
            "repro_pool_workers", "Configured worker count",
            lambda: float(len(self._slots)),
        )
        reg.gauge_function(
            "repro_pool_workers_alive", "Workers currently serving",
            lambda: float(self.workers_alive),
        )
        reg.gauge_function(
            "repro_pool_generation", "Current plan generation",
            lambda: float(self.plan_registry.generation),
        )
        reg.gauge_function(
            "repro_pool_live_segments",
            "Shared-memory segments currently linked",
            lambda: float(len(self.plan_registry.live_segment_names())),
        )
        reg.gauge_function(
            "repro_pool_snapshot_version",
            "Generation of the currently served snapshot",
            lambda: float(self.snapshot.version),
        )

    def _gather_ctl(self, verb: str, payload: Any, timeout: float = 10.0):
        """``(worker_index, reply)`` from every live worker (dead: skip)."""
        pending = []
        for slot in self._slots:
            if slot.alive:
                pending.append((slot.index, self._ctl(slot, verb, payload)))
        out = []
        for index, future in pending:
            try:
                out.append((index, future.result(timeout=timeout)))
            except Exception:
                continue
        return out

    def stats_dict(self) -> dict:
        """Pool telemetry plus each live worker's full stats dict."""
        own = {
            name: family.value
            for name, family in (
                (n, self.registry.get(n))
                for n in self.registry.names()
            )
            if family is not None and not family.labelnames
        }
        return {
            "kind": self.kind,
            "workers": len(self._slots),
            "workers_alive": self.workers_alive,
            "snapshot_version": self.snapshot.version,
            "plan_registry": self.plan_registry.status(),
            "pool": own,
            "per_worker": {
                str(index): stats
                for index, stats in self._gather_ctl("stats", None)
            },
        }

    def metrics_text(self) -> str:
        """One exposition: pool metrics + every worker's, worker-labeled."""
        sections = [({}, self.registry.render_text())]
        for index, text in self._gather_ctl("metrics", None):
            sections.append(({"worker": str(index)}, text))
        return merge_expositions(sections)

    def trace_spans(self, limit: int | None = None) -> list[dict]:
        """Front-end spans plus recent spans from every live worker."""
        spans = list(self.tracer.snapshot(limit))
        for index, worker_spans in self._gather_ctl("trace", limit):
            for span in worker_spans:
                span = dict(span)
                span["worker"] = index
                spans.append(span)
        return spans

    def workers_info(self) -> list[dict]:
        """Per-worker liveness/pid/generation table (``WORKERS`` verb)."""
        out = []
        for slot in self._slots:
            process = slot.process
            out.append(
                {
                    "worker": slot.index,
                    "alive": slot.alive,
                    "pid": process.pid if process is not None else None,
                    "generation": slot.generation,
                    "respawns": slot.respawns,
                    "pending": len(slot.pending),
                }
            )
        return out
