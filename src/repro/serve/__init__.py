"""Serving subsystem: concurrent query serving for learned set structures.

The learned structures answer batches far faster than loops of single
queries (one vectorized forward pass), but real traffic arrives one query
per client.  This package turns the batch kernels into concurrent
throughput:

* :mod:`repro.serve.batcher` — dynamic micro-batching with bounded
  admission and explicit overflow policies (``block`` / ``reject`` /
  ``shed-to-exact``);
* :mod:`repro.serve.cache` — thread-safe LRU result cache with explicit
  invalidation on structure updates;
* :mod:`repro.serve.snapshot` — atomic snapshot swap so retrained
  structures go live without pausing traffic (§7.2's retrain strategy,
  made hot);
* :mod:`repro.serve.server` — :class:`SetServer`, the facade tying the
  pieces together, plus :class:`ServerStats` telemetry;
* :mod:`repro.serve.net` — a line-protocol TCP frontend
  (``repro serve --port``);
* :mod:`repro.serve.registry` — :class:`PlanRegistry`, generation-versioned
  shared-memory plan publication (atomic swap + refcounted unlink);
* :mod:`repro.serve.pool` — :class:`WorkerPool`, the multi-process tier:
  N worker replicas behind consistent-hash routing, crash recovery, and
  zero-copy plan snapshots (``repro serve --workers N``);
* :mod:`repro.serve.frontend` — :class:`AsyncTcpFrontend`, the asyncio
  line-protocol frontend replacing thread-per-connection TCP.
"""

from .batcher import OVERFLOW_POLICIES, BatchPolicy, MicroBatcher
from .cache import QueryCache
from .errors import ServeError, ServerClosedError, ServerOverloadedError
from .frontend import AsyncTcpFrontend
from .net import TcpServeFrontend
from .pool import PoolError, WorkerPool
from .registry import PlanGeneration, PlanRegistry, RegistryError
from .server import SetServer, canonical_query, detect_kind, exact_answer
from .snapshot import Snapshot, SnapshotHolder
from .stats import ServerStats

__all__ = [
    "AsyncTcpFrontend",
    "BatchPolicy",
    "MicroBatcher",
    "OVERFLOW_POLICIES",
    "PlanGeneration",
    "PlanRegistry",
    "PoolError",
    "QueryCache",
    "RegistryError",
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "ServerStats",
    "SetServer",
    "Snapshot",
    "SnapshotHolder",
    "TcpServeFrontend",
    "WorkerPool",
    "canonical_query",
    "detect_kind",
    "exact_answer",
]
