"""Line-protocol TCP frontend over a :class:`SetServer`.

``repro serve --port`` exposes a trained structure to remote clients with a
protocol deliberately simple enough for ``nc``:

* request: one query per line, element ids separated by spaces
  (``3 17 42\\n``); an optional leading predicate token selects the query
  semantics (``superset 3 17 42``, ``overlap>=2 3 17``,
  ``jaccard>=0.5 3 17``, ``subset 3 17`` — no token means ``subset``);
* response: one line per query — cardinality as a float, index position as
  an integer (``none`` for a miss), membership as ``true``/``false``;
* ``STATS`` returns the full server-stats JSON on one line;
* ``METRICS`` returns the Prometheus-style text exposition (latency
  histograms, cache hit rate, guard fallbacks, shard fan-out, training
  stats) — multi-line, terminated by a ``# EOF`` line (the OpenMetrics
  convention), since the exposition format is inherently line-oriented;
* ``TRACE`` (optionally ``TRACE <limit>``) returns the most recent
  query-path spans as a JSON array on one line;
* ``REFRESH`` returns the maintenance status JSON (delta backlog,
  staleness policy, refresh counts) when the server runs with
  ``--auto-refresh``, else ``{"auto_refresh": false}``; ``REFRESH NOW``
  additionally forces a refresh before reporting;
* ``STALENESS`` returns the adaptive-refresh status JSON (workload-log
  summary, per-shard observed q-error, tripped policy reasons) when the
  server runs an adaptive maintainer, else ``{"adaptive": false}``;
* ``QUIT`` ends the connection (as does EOF);
* a line that does not parse as integers is answered with
  ``error malformed query`` — the connection stays up.

Each client connection runs on its own thread (``ThreadingTCPServer``), so
concurrent connections exercise the micro-batcher exactly like in-process
client threads do.

The frontend defends its handler threads against hostile or broken
clients:

* **idle timeout** — a connection that sends nothing for ``idle_timeout_s``
  is dropped (a stalled client used to hold its handler thread forever);
* **bounded line length** — a request line longer than ``max_line_bytes``
  is answered with ``error line too long`` and the connection is closed (a
  newline-less firehose used to grow an unbounded buffer);
* **per-request deadline** — a query that the server cannot answer within
  ``request_deadline_s`` is answered with ``error deadline exceeded``
  instead of blocking the handler on the future indefinitely.
"""

from __future__ import annotations

import concurrent.futures
import json
import socketserver
import threading
from typing import Any

from ..sets.predicates import Predicate
from .server import SetServer

__all__ = ["TcpServeFrontend", "parse_query_line"]


def parse_query_line(tokens: list[str]) -> tuple[str, tuple[int, ...]]:
    """Split a request line into ``(predicate_spec, query)``.

    An optional leading non-numeric token names the predicate
    (``superset 3 17``, ``overlap>=2 3 17``); its absence means
    ``subset``.  Raises ``ValueError`` for unparseable lines — a leading
    token that is neither an integer nor a known predicate keeps the
    protocol's historical ``error malformed query`` answer.
    """
    spec = "subset"
    if tokens:
        head = tokens[0]
        if not (head.isdigit() or (head.startswith("-") and head[1:].isdigit())):
            spec = Predicate.parse(head).spec
            tokens = tokens[1:]
    return spec, tuple(int(token) for token in tokens)


class _Handler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        # StreamRequestHandler applies ``self.timeout`` to the socket, so
        # every blocking read on rfile observes the idle timeout.
        self.timeout = self.server.idle_timeout_s  # type: ignore[attr-defined]
        super().setup()

    def handle(self) -> None:
        try:
            self._serve_lines()
        except (TimeoutError, OSError):
            # Stalled, vanished, or misbehaving client: drop the
            # connection and free the handler thread.
            return

    def _serve_lines(self) -> None:
        server: SetServer = self.server.set_server  # type: ignore[attr-defined]
        max_line = self.server.max_line_bytes  # type: ignore[attr-defined]
        deadline = self.server.request_deadline_s  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline(max_line + 1)
            if not raw:
                return
            if len(raw) > max_line:
                # The line kept going past the cap; there is no safe way
                # to resynchronize mid-line, so answer and hang up.
                self._reply("error line too long")
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            tokens = line.split()
            command = tokens[0].upper()
            if command == "QUIT":
                return
            if command == "STATS":
                self._reply(json.dumps(server.stats_dict(), sort_keys=True))
                continue
            if command == "METRICS":
                exposition = server.metrics_text()
                for metric_line in exposition.splitlines():
                    self._reply(metric_line)
                self._reply("# EOF")
                continue
            if command == "TRACE":
                limit = 200
                if len(tokens) > 1:
                    try:
                        limit = max(0, int(tokens[1]))
                    except ValueError:
                        self._reply("error malformed trace limit")
                        continue
                self._reply(json.dumps(server.trace_spans(limit)))
                continue
            if command == "REFRESH":
                maintainer = getattr(server, "maintainer", None)
                if maintainer is None:
                    self._reply(json.dumps({"auto_refresh": False}))
                    continue
                if len(tokens) > 1 and tokens[1].upper() == "NOW":
                    try:
                        maintainer.refresh_now(("manual",))
                    except Exception as exc:
                        self._reply(f"error {type(exc).__name__}")
                        continue
                self._reply(json.dumps(maintainer.status(), sort_keys=True))
                continue
            if command == "STALENESS":
                maintainer = getattr(server, "maintainer", None)
                status = getattr(maintainer, "staleness_status", None)
                if status is None:
                    self._reply(json.dumps({"adaptive": False}))
                    continue
                try:
                    self._reply(json.dumps(status(), sort_keys=True))
                except Exception as exc:
                    self._reply(f"error {type(exc).__name__}")
                continue
            try:
                spec, query = parse_query_line(tokens)
            except ValueError:
                self._reply("error malformed query")
                continue
            try:
                answer = server.query(query, timeout=deadline, predicate=spec)
            except (concurrent.futures.TimeoutError, TimeoutError):
                self._reply("error deadline exceeded")
            except Exception as exc:
                self._reply(f"error {type(exc).__name__}")
            else:
                self._reply(_format_answer(server.kind, answer))

    def _reply(self, text: str) -> None:
        self.wfile.write((text + "\n").encode("utf-8"))
        self.wfile.flush()


def _format_answer(kind: str, answer: Any) -> str:
    if kind == "cardinality":
        return f"{float(answer):.2f}"
    if kind == "index":
        return "none" if answer is None else str(int(answer))
    return "true" if answer else "false"


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpServeFrontend:
    """Owns the listening socket; start with :meth:`serve_forever` (blocking)
    or :meth:`start_background` (tests), stop with :meth:`shutdown`.

    Parameters
    ----------
    idle_timeout_s:
        Connections idle longer than this are dropped; ``None`` disables
        the timeout (not recommended outside tests).
    max_line_bytes:
        Longest accepted request line (including the newline).
    request_deadline_s:
        Per-query answer deadline; ``None`` waits forever.
    """

    def __init__(
        self,
        set_server: SetServer,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float | None = 300.0,
        max_line_bytes: int = 65536,
        request_deadline_s: float | None = 30.0,
    ):
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive or None")
        if max_line_bytes < 16:
            raise ValueError("max_line_bytes must be >= 16")
        if request_deadline_s is not None and request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive or None")
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.set_server = set_server  # type: ignore[attr-defined]
        self._tcp.idle_timeout_s = idle_timeout_s  # type: ignore[attr-defined]
        self._tcp.max_line_bytes = int(max_line_bytes)  # type: ignore[attr-defined]
        self._tcp.request_deadline_s = request_deadline_s  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — resolves ephemeral port 0 requests."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def start_background(self) -> "TcpServeFrontend":
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-tcp", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
