"""Line-protocol TCP frontend over a :class:`SetServer`.

``repro serve --port`` exposes a trained structure to remote clients with a
protocol deliberately simple enough for ``nc``:

* request: one query per line, element ids separated by spaces
  (``3 17 42\\n``);
* response: one line per query — cardinality as a float, index position as
  an integer (``none`` for a miss), membership as ``true``/``false``;
* ``STATS`` returns the full server-stats JSON on one line;
* ``METRICS`` returns the Prometheus-style text exposition (latency
  histograms, cache hit rate, guard fallbacks, shard fan-out, training
  stats) — multi-line, terminated by a ``# EOF`` line (the OpenMetrics
  convention), since the exposition format is inherently line-oriented;
* ``TRACE`` (optionally ``TRACE <limit>``) returns the most recent
  query-path spans as a JSON array on one line;
* ``REFRESH`` returns the maintenance status JSON (delta backlog,
  staleness policy, refresh counts) when the server runs with
  ``--auto-refresh``, else ``{"auto_refresh": false}``; ``REFRESH NOW``
  additionally forces a refresh before reporting;
* ``QUIT`` ends the connection (as does EOF);
* a line that does not parse as integers is answered with
  ``error malformed query`` — the connection stays up.

Each client connection runs on its own thread (``ThreadingTCPServer``), so
concurrent connections exercise the micro-batcher exactly like in-process
client threads do.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any

from .server import SetServer

__all__ = ["TcpServeFrontend"]


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: SetServer = self.server.set_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            tokens = line.split()
            command = tokens[0].upper()
            if command == "QUIT":
                return
            if command == "STATS":
                self._reply(json.dumps(server.stats_dict(), sort_keys=True))
                continue
            if command == "METRICS":
                exposition = server.metrics_text()
                for metric_line in exposition.splitlines():
                    self._reply(metric_line)
                self._reply("# EOF")
                continue
            if command == "TRACE":
                limit = 200
                if len(tokens) > 1:
                    try:
                        limit = max(0, int(tokens[1]))
                    except ValueError:
                        self._reply("error malformed trace limit")
                        continue
                self._reply(json.dumps(server.trace_spans(limit)))
                continue
            if command == "REFRESH":
                maintainer = getattr(server, "maintainer", None)
                if maintainer is None:
                    self._reply(json.dumps({"auto_refresh": False}))
                    continue
                if len(tokens) > 1 and tokens[1].upper() == "NOW":
                    try:
                        maintainer.refresh_now(("manual",))
                    except Exception as exc:
                        self._reply(f"error {type(exc).__name__}")
                        continue
                self._reply(json.dumps(maintainer.status(), sort_keys=True))
                continue
            try:
                query = tuple(int(token) for token in line.split())
            except ValueError:
                self._reply("error malformed query")
                continue
            try:
                self._reply(_format_answer(server.kind, server.query(query)))
            except Exception as exc:
                self._reply(f"error {type(exc).__name__}")

    def _reply(self, text: str) -> None:
        self.wfile.write((text + "\n").encode("utf-8"))
        self.wfile.flush()


def _format_answer(kind: str, answer: Any) -> str:
    if kind == "cardinality":
        return f"{float(answer):.2f}"
    if kind == "index":
        return "none" if answer is None else str(int(answer))
    return "true" if answer else "false"


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpServeFrontend:
    """Owns the listening socket; start with :meth:`serve_forever` (blocking)
    or :meth:`start_background` (tests), stop with :meth:`shutdown`."""

    def __init__(self, set_server: SetServer, host: str = "127.0.0.1", port: int = 0):
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.set_server = set_server  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — resolves ephemeral port 0 requests."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._tcp.serve_forever()

    def start_background(self) -> "TcpServeFrontend":
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-tcp", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
