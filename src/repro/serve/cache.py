"""Thread-safe LRU result cache keyed on canonical query tuples.

Learned-structure inference is pure between updates, so identical queries
can be answered from memory: the server consults this cache before
enqueueing a request and fills it after every resolved batch.  The cache is
invalidated per key on structure mutations (``record_update`` /
``insert_update`` / ``insert``, wired through
:class:`repro.core.UpdateNotifier`) and cleared wholesale on snapshot swap,
because a retrained model answers *every* query differently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["QueryCache"]

_MISSING = object()


def _related(key: Hashable, mutated: frozenset) -> bool:
    """Whether a mutation of ``mutated`` can change the answer under ``key``.

    See :meth:`QueryCache.invalidate_related` for the per-predicate rules.
    """
    spec = None
    cached_query = key
    if (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[0], str)
    ):
        spec, cached_query = key
    try:
        cached = frozenset(cached_query)
    except TypeError:
        return False
    if not cached:
        return True
    if spec is None or spec.startswith(("subset", "superset")):
        return cached <= mutated or cached >= mutated
    if spec.startswith(("overlap", "jaccard")):
        return bool(cached & mutated)
    # Unknown spec string: be conservative, drop it.
    return True


class QueryCache:
    """Bounded LRU map with hit/miss/eviction/invalidation counters.

    ``capacity=0`` disables caching entirely (every ``get`` misses, ``put``
    is a no-op), which keeps the server's code path uniform.  Cached values
    may legitimately be ``None`` (an index lookup miss), so :meth:`get`
    returns a ``(found, value)`` pair rather than a sentinel value.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.invalidation_misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """``(True, value)`` on a hit (refreshing recency), else ``(False, None)``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; ``True`` iff the key was actually cached.

        Invalidations that find nothing are counted separately
        (``invalidation_misses``), so operators can see wasted
        invalidation traffic — update storms against keys nobody queried —
        instead of having it inflate the real invalidation count.
        """
        with self._lock:
            dropped = self._data.pop(key, _MISSING) is not _MISSING
            if dropped:
                self.invalidations += 1
            else:
                self.invalidation_misses += 1
            return dropped

    def invalidate_related(self, canonical) -> int:
        """Drop every entry whose answer a mutation of ``canonical`` can change.

        A structure mutation is logically an insert/update of the set
        ``canonical``.  Keys come in two shapes: a bare canonical query
        (legacy callers) or a ``(predicate_spec, canonical)`` pair (the
        server).  The relation swept depends on the cached predicate:

        * **bare / subset / superset** — any cached query that is a subset
          of the mutated set can now be satisfied (or counted) by it, and
          any superset query had its answer derived from state the
          mutation changed; both directions are dropped (the exact key is
          a subset of itself, so this strictly widens :meth:`invalidate`);
        * **overlap / jaccard** — the thresholds move with the
          intersection size, so any cached query *intersecting* the
          mutated set is dropped (a strict superset of the ⊆/⊇ sweep);
        * the **empty query** aggregates the whole collection under every
          predicate and is always dropped.

        Returns the number of entries removed; a sweep that drops nothing
        counts one invalidation miss.
        """
        try:
            mutated = frozenset(canonical)
        except TypeError:
            return 0
        with self._lock:
            stale = [key for key in self._data if _related(key, mutated)]
            for key in stale:
                del self._data[key]
            if stale:
                self.invalidations += len(stale)
            else:
                self.invalidation_misses += 1
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (snapshot swap); counters are preserved."""
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "invalidation_misses": self.invalidation_misses,
            }
