"""Optimizers and learning-rate schedules.

Adam is the workhorse (the Keras default the paper's models would have
used); SGD with momentum and RMSprop exist for the ablation benches and for
the sum-of-digits experiment's recurrent competitors.
"""

from __future__ import annotations

import math

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
]


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = (
                    grad + self.momentum * velocity if self.nesterov else velocity
                )
            else:
                update = grad
            parameter.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop with exponentially decaying squared-gradient average."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, square_avg in zip(self.parameters, self._square_avg):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad**2
            parameter.data -= self.lr * grad / (np.sqrt(square_avg) + self.eps)


class _Scheduler:
    """Base: schedulers rescale the optimizer's lr from its initial value."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """Multiply the lr by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        super().__init__(optimizer)
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def _lr_at(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * t / self.t_max)
        )
