"""Weight initializers.

Keras dense layers default to Glorot-uniform weights and zero biases; we
provide the same so that training dynamics resemble the paper's setup, plus
He initialization for deeper ReLU stacks and simple uniform/normal schemes
for embeddings.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "uniform",
    "normal",
    "zeros",
]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, scale: float = 0.05):
    return rng.uniform(-scale, scale, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.05):
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None):
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out for dense (in, out) and embedding (vocab, dim) shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out
