"""Module/parameter abstractions, mirroring the familiar layer-stack API.

A :class:`Module` owns :class:`Parameter` leaves and child modules, found by
introspecting instance attributes (lists of modules are supported through
:class:`ModuleList`).  State dicts are flat ``{dotted.name: ndarray}``
mappings used for serialization and for the model-size accounting that the
paper's memory tables rely on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class for all neural network building blocks."""

    def __init__(self):
        self.training = True

    # -- traversal --------------------------------------------------------

    def children(self) -> Iterator[tuple[str, "Module"]]:
        """Yield ``(name, child_module)`` for direct children."""
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for the whole subtree."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    # -- training state -----------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- weights versioning --------------------------------------------------

    def weights_version(self) -> int:
        """Monotonic counter bumped whenever the weights change wholesale.

        Frozen inference plans record the version they were exported at and
        refuse to serve a model whose weights have since moved (training,
        ``load_state_dict``) — the staleness check behind the transparent
        autograd fallback.
        """
        return getattr(self, "_weights_version", 0)

    def bump_weights_version(self) -> int:
        self._weights_version = self.weights_version() + 1
        return self._weights_version

    # -- forward -----------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- serialization --------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameter arrays keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            array = np.asarray(state[name], dtype=parameter.data.dtype)
            if array.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{array.shape} vs {parameter.data.shape}"
                )
            parameter.data = array.copy()
        self.bump_weights_version()

    # -- size accounting ----------------------------------------------------

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def parameter_bytes(self, dtype=np.float32) -> int:
        """Serialized weight footprint assuming ``dtype`` storage.

        The paper reports model sizes of pickled float32 weights; this is
        the analogous figure.
        """
        itemsize = np.dtype(dtype).itemsize
        return self.num_parameters() * itemsize


class ModuleList(Module):
    """A list of modules whose parameters are all registered."""

    def __init__(self, modules=()):
        super().__init__()
        self._modules = list(modules)
        self._sync()

    def _sync(self) -> None:
        # Expose each module as an indexed attribute so traversal finds it.
        for index, module in enumerate(self._modules):
            setattr(self, f"_m{index}", module)

    def append(self, module: Module) -> None:
        self._modules.append(module)
        setattr(self, f"_m{len(self._modules) - 1}", module)

    def __iter__(self):
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
