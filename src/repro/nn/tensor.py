"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` framework.  The paper's
models were implemented in Keras; since no deep-learning framework is
available in this environment, we implement a compact, well-tested autograd
engine that supports everything DeepSets, the compressed DeepSets variant,
and the LSTM/GRU competitors need: broadcasting arithmetic, matrix products,
reductions, indexing, and (in :mod:`repro.nn.functional`) gather and
segment-sum primitives for ragged set batches.

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray``.  When gradients are enabled, an
  operation records a closure mapping the upstream gradient to a list of
  ``(parent, gradient)`` contributions.
* ``backward()`` topologically sorts the recorded graph (iteratively, so
  long RNN chains cannot overflow the Python stack) and accumulates
  gradients into ``.grad`` on leaf tensors.
* Gradients are plain ``np.ndarray`` objects; higher-order gradients are out
  of scope, which keeps the engine small and auditable.
* :func:`no_grad` disables graph recording, making pure inference (used by
  the latency benchmarks) allocation-light.  The flag is **thread-local**:
  a serving thread running inference under :func:`no_grad` must not stop a
  concurrent background-refresh thread from recording its training graph.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_STATE = threading.local()

# A backward closure maps the upstream gradient to per-parent contributions.
BackwardFn = Callable[[np.ndarray], list[tuple["Tensor", np.ndarray]]]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Inside the block every operation behaves like plain numpy with a thin
    :class:`Tensor` wrapper; ``backward`` cannot flow through results
    produced here.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph.

    Per-thread: each new thread starts with gradients enabled.
    """
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can add leading axes and stretch length-1 axes; the adjoint
    of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Non-array input is converted to
        ``float64``; existing arrays keep their dtype (integer arrays are
        allowed for index inputs but cannot require gradients).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, np.ndarray):
            self.data = data
        else:
            self.data = np.asarray(data, dtype=np.float64)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError("only floating point tensors can require gradients")
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._backward: BackwardFn | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- graph bookkeeping ---------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: BackwardFn,
    ) -> "Tensor":
        """Create a non-leaf tensor, recording the graph iff enabled."""
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = parents
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones, the usual seed for a scalar loss.  Raises
        if called on a tensor produced under :func:`no_grad`.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape "
                    f"{self.data.shape}"
                )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad.
                if node.grad is None:
                    node.grad = node_grad.astype(node.data.dtype, copy=True)
                else:
                    node.grad += node_grad
                continue
            for parent, contribution in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(grad, other.data.shape)),
            ]

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda grad: [(self, -grad)])

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad, self.data.shape)),
                (other, _unbroadcast(-grad, other.data.shape)),
            ]

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad * other.data, self.data.shape)),
                (other, _unbroadcast(grad * self.data, other.data.shape)),
            ]

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.data.shape
                    ),
                ),
            ]

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            return [(self, grad * exponent * self.data ** (exponent - 1))]

        return Tensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad):
            # Batch dimensions broadcast in matmul; the adjoints must be
            # summed back down (e.g. a (B, L, D) @ (D, H) product sends a
            # (B, D, H) gradient to the (D, H) weight).
            contributions = []
            if self.requires_grad:
                grad_self = grad @ other.data.swapaxes(-1, -2)
                contributions.append((self, _unbroadcast(grad_self, self.data.shape)))
            if other.requires_grad:
                grad_other = self.data.swapaxes(-1, -2) @ grad
                contributions.append(
                    (other, _unbroadcast(grad_other, other.data.shape))
                )
            return contributions

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # -- reductions ------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return [(self, np.broadcast_to(g, self.data.shape).copy())]

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split ties evenly so numeric gradient checks pass on plateaus.
            if axis is None:
                denom = mask.sum()
            else:
                denom = mask.sum(axis=axis, keepdims=True)
            return [(self, mask * g / denom)]

        return Tensor._make(out_data, (self,), backward)

    # -- shape manipulation --------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad):
            return [(self, grad.reshape(self.data.shape))]

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def ravel(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        axes_arg = axes if axes else None

        def backward(grad):
            if axes_arg is None:
                return [(self, grad.transpose())]
            return [(self, grad.transpose(np.argsort(axes_arg)))]

        return Tensor._make(self.data.transpose(axes_arg), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            return [(self, full)]

        return Tensor._make(self.data[key], (self,), backward)
