"""A from-scratch numpy neural-network framework.

Built because the reproduction environment has no deep-learning framework
installed; provides exactly what the paper's models need:

* :mod:`repro.nn.tensor` — reverse-mode autograd over numpy arrays.
* :mod:`repro.nn.functional` — activations plus the set primitives
  (``gather``, ``segment_sum``/``mean``/``max``).
* :mod:`repro.nn.layers` — Linear, Embedding, Dropout, Sequential, MLP.
* :mod:`repro.nn.rnn` — LSTM/GRU (Figure 7 competitors).
* :mod:`repro.nn.losses` — MSE/MAE/q-error surrogate/BCE.
* :mod:`repro.nn.optim` — SGD/Adam/RMSprop + LR schedules.
* :mod:`repro.nn.data` — ragged set batching and data loaders.
* :mod:`repro.nn.serialize` — weight (de)serialization and size accounting.
"""

from . import functional
from .attention import ISAB, MAB, PMA, SAB, LayerNorm, MultiheadAttention
from .data import RaggedArray, SetBatch, SetDataLoader
from .layers import (
    MLP,
    Dropout,
    Embedding,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    resolve_activation,
)
from .losses import (
    bce_with_logits,
    binary_cross_entropy,
    huber_loss,
    mae_loss,
    mse_loss,
    q_error_loss,
    resolve_loss,
)
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adam, CosineAnnealingLR, ExponentialLR, Optimizer, RMSprop, StepLR
from .rnn import GRU, LSTM, GRUCell, LSTMCell
from .serialize import (
    CorruptStateError,
    load_state,
    pickled_size_bytes,
    save_state,
    state_dict_bytes,
)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "MLP",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Identity",
    "resolve_activation",
    "mse_loss",
    "mae_loss",
    "q_error_loss",
    "huber_loss",
    "binary_cross_entropy",
    "bce_with_logits",
    "resolve_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "LSTM",
    "GRU",
    "LSTMCell",
    "GRUCell",
    "MultiheadAttention",
    "LayerNorm",
    "MAB",
    "SAB",
    "ISAB",
    "PMA",
    "SetBatch",
    "RaggedArray",
    "SetDataLoader",
    "save_state",
    "load_state",
    "CorruptStateError",
    "pickled_size_bytes",
    "state_dict_bytes",
]
