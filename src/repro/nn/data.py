"""Ragged batching for collections of sets.

DeepSets consumes a *batch of sets* whose sizes differ.  Rather than padding,
we flatten a batch to one long element-id axis plus a sorted ``segment_ids``
array mapping every element to its set; the permutation-invariant pooling is
then a segment reduction (:func:`repro.nn.functional.segment_sum`).

:class:`SetBatch` is that flattened representation; :class:`RaggedArray`
stores an entire training corpus in two flat arrays so mini-batches can be
sliced out without touching Python lists; :class:`SetDataLoader` yields
shuffled mini-batches ``(SetBatch, targets, indices)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["SetBatch", "RaggedArray", "SetDataLoader"]


@dataclass(frozen=True)
class SetBatch:
    """A flattened batch of sets.

    Attributes
    ----------
    elements:
        1-D int64 array of element ids, sets laid out back to back.
    segment_ids:
        1-D int64 array, same length, mapping each element to its set index
        within the batch; sorted non-decreasing by construction.
    num_sets:
        Number of sets in the batch (segments may not be empty: sets in this
        problem contain at least one element).
    """

    elements: np.ndarray
    segment_ids: np.ndarray
    num_sets: int

    @staticmethod
    def from_sets(sets: Sequence[Iterable[int]]) -> "SetBatch":
        """Flatten an iterable of element-id collections."""
        arrays = [np.asarray(list(s), dtype=np.int64) for s in sets]
        if any(len(a) == 0 for a in arrays):
            raise ValueError("sets must be non-empty")
        if arrays:
            elements = np.concatenate(arrays)
            segment_ids = np.repeat(
                np.arange(len(arrays), dtype=np.int64),
                [len(a) for a in arrays],
            )
        else:
            elements = np.empty(0, dtype=np.int64)
            segment_ids = np.empty(0, dtype=np.int64)
        return SetBatch(elements, segment_ids, len(arrays))

    def __len__(self) -> int:
        return self.num_sets

    def set_sizes(self) -> np.ndarray:
        """Number of elements of each set in the batch."""
        return np.bincount(self.segment_ids, minlength=self.num_sets)


class RaggedArray:
    """A corpus of sets stored as flat ``values`` + ``offsets`` arrays.

    ``offsets`` has length ``n + 1``; set ``i`` occupies
    ``values[offsets[i]:offsets[i + 1]]``.  Batching by arbitrary index
    lists is vectorized with ``np.concatenate`` over slices.
    """

    def __init__(self, sets: Sequence[Iterable[int]]):
        lengths = []
        chunks = []
        for s in sets:
            chunk = np.asarray(list(s), dtype=np.int64)
            if len(chunk) == 0:
                raise ValueError("sets must be non-empty")
            lengths.append(len(chunk))
            chunks.append(chunk)
        self.offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.offsets[1:])
        self.values = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def get(self, index: int) -> np.ndarray:
        return self.values[self.offsets[index] : self.offsets[index + 1]]

    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def batch(self, indices: np.ndarray) -> SetBatch:
        """Materialize a :class:`SetBatch` for the given set indices."""
        indices = np.asarray(indices, dtype=np.int64)
        starts = self.offsets[indices]
        stops = self.offsets[indices + 1]
        sizes = stops - starts
        total = int(sizes.sum())
        # Build a flat gather index: for each selected set, the range
        # [start, stop) — vectorized without a Python loop.
        gather = np.repeat(starts - np.concatenate(([0], np.cumsum(sizes)[:-1])), sizes)
        gather = gather + np.arange(total)
        elements = self.values[gather]
        segment_ids = np.repeat(np.arange(len(indices), dtype=np.int64), sizes)
        return SetBatch(elements, segment_ids, len(indices))


class SetDataLoader:
    """Mini-batch iterator over a :class:`RaggedArray` and target array.

    Yields ``(SetBatch, targets, indices)`` so callers (e.g. the hybrid
    trainer's outlier bookkeeping) can map per-sample errors back to corpus
    positions.
    """

    def __init__(
        self,
        sets: RaggedArray | Sequence[Iterable[int]],
        targets: np.ndarray,
        batch_size: int = 256,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        weights: np.ndarray | None = None,
    ):
        self.ragged = sets if isinstance(sets, RaggedArray) else RaggedArray(sets)
        self.targets = np.asarray(targets, dtype=np.float64)
        if len(self.ragged) != len(self.targets):
            raise ValueError(
                f"{len(self.ragged)} sets but {len(self.targets)} targets"
            )
        if weights is None:
            self.weights = None
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if len(self.weights) != len(self.targets):
                raise ValueError(
                    f"{len(self.targets)} targets but {len(self.weights)} weights"
                )
            if (self.weights < 0).any():
                raise ValueError("sample weights must be non-negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()
        # Active-sample mask lets the guided trainer evict outliers without
        # rebuilding the ragged storage.
        self._active = np.ones(len(self.ragged), dtype=bool)

    def __len__(self) -> int:
        active = int(self._active.sum())
        return (active + self.batch_size - 1) // self.batch_size

    @property
    def num_active(self) -> int:
        return int(self._active.sum())

    def deactivate(self, indices: np.ndarray) -> None:
        """Exclude samples (outliers moved to the auxiliary structure)."""
        self._active[np.asarray(indices, dtype=np.int64)] = False

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._active)

    def __iter__(self) -> Iterator[tuple[SetBatch, np.ndarray, np.ndarray]]:
        indices = self.active_indices()
        if self.shuffle:
            indices = self.rng.permutation(indices)
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start : start + self.batch_size]
            yield self.ragged.batch(chunk), self.targets[chunk], chunk
