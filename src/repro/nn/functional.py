"""Differentiable functions on :class:`repro.nn.tensor.Tensor`.

The set-specific primitives live here:

* :func:`gather` — embedding row lookup for a flat array of element ids.
* :func:`segment_sum` / :func:`segment_mean` / :func:`segment_max` — the
  permutation-invariant pooling step of DeepSets over a *ragged* batch: a
  batch of sets is flattened to one long element axis plus an array of
  segment ids, and pooling reduces each segment to one row.

Everything else is the standard activation/stacking toolbox the paper's
models need (sigmoid outputs, ReLU hidden layers, concatenation of
quotient/remainder embeddings, ...).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "relu",
    "leaky_relu",
    "softplus",
    "abs",
    "maximum",
    "clip",
    "concat",
    "stack",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_boundaries",
    "logsumexp",
    "softmax",
    "sqrt",
]


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)
    return Tensor._make(out_data, (x,), lambda grad: [(x, grad * out_data)])


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    return Tensor._make(np.log(x.data), (x,), lambda grad: [(x, grad / x.data)])


def sigmoid(x: Tensor) -> Tensor:
    x = as_tensor(x)
    # Numerically stable piecewise formulation.
    data = x.data
    out_data = np.where(
        data >= 0, 1.0 / (1.0 + np.exp(-np.abs(data))),
        np.exp(-np.abs(data)) / (1.0 + np.exp(-np.abs(data))),
    )
    return Tensor._make(
        out_data, (x,), lambda grad: [(x, grad * out_data * (1.0 - out_data))]
    )


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.tanh(x.data)
    return Tensor._make(
        out_data, (x,), lambda grad: [(x, grad * (1.0 - out_data**2))]
    )


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    return Tensor._make(
        np.where(mask, x.data, 0.0), (x,), lambda grad: [(x, grad * mask)]
    )


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return Tensor._make(x.data * scale, (x,), lambda grad: [(x, grad * scale)])


def softplus(x: Tensor) -> Tensor:
    x = as_tensor(x)
    # log(1 + e^x) computed stably as max(x, 0) + log1p(e^{-|x|}).
    data = x.data
    out_data = np.maximum(data, 0.0) + np.log1p(np.exp(-np.abs(data)))
    sig = np.where(
        data >= 0, 1.0 / (1.0 + np.exp(-np.abs(data))),
        np.exp(-np.abs(data)) / (1.0 + np.exp(-np.abs(data))),
    )
    return Tensor._make(out_data, (x,), lambda grad: [(x, grad * sig)])


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    x = as_tensor(x)
    sign = np.sign(x.data)
    return Tensor._make(np.abs(x.data), (x,), lambda grad: [(x, grad * sign)])


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first argument."""
    a = as_tensor(a)
    b = as_tensor(b)
    take_a = a.data >= b.data

    def backward(grad):
        from .tensor import _unbroadcast

        return [
            (a, _unbroadcast(grad * take_a, a.data.shape)),
            (b, _unbroadcast(grad * ~take_a, b.data.shape)),
        ]

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)


def clip(x: Tensor, low: float | None, high: float | None) -> Tensor:
    """Clamp values; gradient is zero outside the active range."""
    x = as_tensor(x)
    out_data = np.clip(x.data, low, high)
    inside = np.ones_like(x.data, dtype=bool)
    if low is not None:
        inside &= x.data >= low
    if high is not None:
        inside &= x.data <= high
    return Tensor._make(out_data, (x,), lambda grad: [(x, grad * inside)])


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (split gradient on the way back)."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        contributions = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            contributions.append((tensor, grad[tuple(index)]))
        return contributions

    return Tensor._make(
        np.concatenate([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad):
        slabs = np.moveaxis(grad, axis, 0)
        return [(tensor, slabs[i]) for i, tensor in enumerate(tensors)]

    return Tensor._make(
        np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def gather(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` — the embedding primitive.

    ``indices`` is a plain integer ndarray (it carries no gradient); the
    backward pass scatter-adds the upstream gradient into the rows that were
    read, which is exactly the sparse embedding gradient.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError("gather indices must be integers")

    def backward(grad):
        full = np.zeros_like(table.data)
        np.add.at(full, indices, grad)
        return [(table, full)]

    return Tensor._make(table.data[indices], (table,), backward)


def segment_boundaries(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Start offsets of each segment in a *sorted* segment-id array."""
    return np.searchsorted(segment_ids, np.arange(num_segments))


def _check_sorted(segment_ids: np.ndarray) -> None:
    if len(segment_ids) > 1 and np.any(np.diff(segment_ids) < 0):
        raise ValueError("segment_ids must be sorted non-decreasing")


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` per segment: the DeepSets pooling operation.

    ``segment_ids`` must be sorted non-decreasing (the ragged batching in
    :mod:`repro.nn.data` produces them that way), which allows the fast
    ``np.add.reduceat`` path.  Empty segments yield zero rows.
    """
    segment_ids = np.asarray(segment_ids)
    _check_sorted(segment_ids)
    out_data = np.zeros((num_segments,) + x.data.shape[1:], dtype=x.data.dtype)
    if len(segment_ids):
        starts = segment_boundaries(segment_ids, num_segments)
        present = starts < len(segment_ids)
        # reduceat mis-handles empty segments (repeats the next value), so
        # reduce only over segments that actually contain rows.
        reduced = np.add.reduceat(x.data, starts[present], axis=0)
        out_data[present] = reduced
        # A start offset that equals the next segment's start is empty and
        # reduceat returned the *next* segment's row there; zero it out.
        sizes = np.diff(np.append(starts, len(segment_ids)))
        out_data[sizes == 0] = 0.0

    def backward(grad):
        return [(x, grad[segment_ids])]

    return Tensor._make(out_data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows per segment (empty segments stay zero)."""
    segment_ids = np.asarray(segment_ids)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    safe = np.maximum(counts, 1.0)
    total = segment_sum(x, segment_ids, num_segments)
    return total * Tensor(1.0 / safe[:, None] if x.data.ndim > 1 else 1.0 / safe)


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Maximum per segment; empty segments are zero.

    Gradient is split evenly among the rows attaining the maximum so that
    finite-difference checks pass on exact ties.
    """
    segment_ids = np.asarray(segment_ids)
    _check_sorted(segment_ids)
    out_data = np.zeros((num_segments,) + x.data.shape[1:], dtype=x.data.dtype)
    if len(segment_ids):
        starts = segment_boundaries(segment_ids, num_segments)
        present = starts < len(segment_ids)
        reduced = np.maximum.reduceat(x.data, starts[present], axis=0)
        out_data[present] = reduced
        sizes = np.diff(np.append(starts, len(segment_ids)))
        out_data[sizes == 0] = 0.0

    def backward(grad):
        per_row_max = out_data[segment_ids]
        mask = (x.data == per_row_max).astype(x.data.dtype)
        # Count ties per segment and feature to split the gradient.
        tie_counts = np.zeros_like(out_data)
        np.add.at(tie_counts, segment_ids, mask)
        tie_counts = np.maximum(tie_counts, 1.0)
        return [(x, mask * grad[segment_ids] / tie_counts[segment_ids])]

    return Tensor._make(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    x = as_tensor(x)
    out_data = np.sqrt(x.data)
    return Tensor._make(
        out_data, (x,), lambda grad: [(x, grad * 0.5 / out_data)]
    )


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Implemented as a primitive with the closed-form Jacobian product
    ``dx = s * (g - sum(g * s))`` — the building block of the attention
    layers in :mod:`repro.nn.attention`.
    """
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        return [(x, out_data * (grad - inner))]

    return Tensor._make(out_data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction (an alternative pooling)."""
    x = as_tensor(x)
    shift = x.data.max(axis=axis, keepdims=True)
    shifted = exp(x - Tensor(shift))
    summed = shifted.sum(axis=axis, keepdims=True)
    out = log(summed) + Tensor(shift)
    if not keepdims:
        out = out.reshape(tuple(np.delete(out.shape, axis)))
    return out
