"""Loss functions (Table 1 of the paper).

* Regression tasks (index position, cardinality) train on log-transformed,
  min-max scaled targets with a sigmoid output.  On that scale, the mean
  absolute error equals the mean ``|log q-error|`` up to the constant
  ``max - min`` of the scaler, so :func:`q_error_loss` *is* MAE-on-scaled —
  a differentiable surrogate of the paper's q-error objective.  MSE is
  available as an alternative, as the paper notes.
* The membership (Bloom filter) task trains with binary cross-entropy.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "q_error_loss",
    "huber_loss",
    "binary_cross_entropy",
    "bce_with_logits",
    "resolve_loss",
]

_EPS = 1e-12


def _pair(pred: Tensor, target) -> tuple[Tensor, Tensor]:
    pred = as_tensor(pred)
    target = as_tensor(target)
    if pred.shape != target.shape:
        raise ValueError(f"prediction shape {pred.shape} != target shape {target.shape}")
    return pred, target


def _reduce(elementwise: Tensor, weights) -> Tensor:
    """Mean, or a weighted mean when per-sample ``weights`` are given.

    Weights are treated as constants (no gradient flows through them) and
    normalized by their sum, so uniform weights reproduce the plain mean
    exactly and the loss scale stays independent of the weight scale.
    """
    if weights is None:
        return elementwise.mean()
    w = np.asarray(weights, dtype=np.float64).reshape(elementwise.shape)
    if (w < 0).any():
        raise ValueError("sample weights must be non-negative")
    total = float(w.sum())
    if total <= 0:
        raise ValueError("sample weights must not sum to zero")
    return (elementwise * w).sum() * (1.0 / total)


def mse_loss(pred: Tensor, target, weights=None) -> Tensor:
    """Mean squared error."""
    pred, target = _pair(pred, target)
    return _reduce((pred - target) ** 2, weights)


def mae_loss(pred: Tensor, target, weights=None) -> Tensor:
    """Mean absolute error."""
    pred, target = _pair(pred, target)
    return _reduce(F.abs(pred - target), weights)


def q_error_loss(pred: Tensor, target, weights=None) -> Tensor:
    """Differentiable q-error surrogate on scaled targets.

    With targets ``t = (log y - lo) / (hi - lo)`` the identity
    ``|pred - t| * (hi - lo) = |log y_hat - log y| = log q_error(y_hat, y)``
    holds, so minimizing MAE on the scaled space minimizes the mean log
    q-error.  Exposed under its own name so model configs read like the
    paper's Table 1.
    """
    return mae_loss(pred, target, weights)


def huber_loss(pred: Tensor, target, delta: float = 1.0, weights=None) -> Tensor:
    """Smooth L1: quadratic near zero, linear in the tails."""
    pred, target = _pair(pred, target)
    diff = pred - target
    abs_diff = F.abs(diff)
    quadratic = F.clip(abs_diff, None, delta)
    linear = abs_diff - quadratic
    return _reduce(quadratic**2 * 0.5 + linear * delta, weights)


def binary_cross_entropy(pred: Tensor, target, weights=None) -> Tensor:
    """BCE on probabilities (the models end in a sigmoid)."""
    pred, target = _pair(pred, target)
    clipped = F.clip(pred, _EPS, 1.0 - _EPS)
    loss = target * F.log(clipped) + (1.0 - target) * F.log(1.0 - clipped)
    return _reduce(loss, weights) * -1.0


def bce_with_logits(logits: Tensor, target, weights=None) -> Tensor:
    """Numerically stable BCE taking raw logits.

    Uses ``max(z, 0) - z*t + log(1 + e^{-|z|})``.
    """
    logits, target = _pair(logits, target)
    return _reduce(
        F.relu(logits) - logits * target + F.softplus(-F.abs(logits)), weights
    )


_LOSSES = {
    "mse": mse_loss,
    "mae": mae_loss,
    "q_error": q_error_loss,
    "huber": huber_loss,
    "bce": binary_cross_entropy,
}


def resolve_loss(name: str):
    """Look up a loss function by name (as used in model configs)."""
    try:
        return _LOSSES[name]
    except KeyError:
        raise ValueError(
            f"unknown loss {name!r}; choose from {sorted(_LOSSES)}"
        ) from None
