"""Attention blocks for the Set Transformer (Lee et al., ICML 2019).

The paper chooses DeepSets over the Set Transformer on the grounds of
execution time and memory (§2, §3.2: "the DeepSets model is superiorly
faster and smaller").  These blocks exist so that claim can be *measured*:
:mod:`repro.core.set_transformer` assembles them into a drop-in set model
and the ablation bench compares the two architectures.

Implemented blocks, following the original paper's notation:

* :class:`MultiheadAttention` — scaled dot-product attention with heads
  and an optional key-padding mask.
* :class:`MAB` — multihead attention block
  ``LayerNorm(H + rFF(H))`` with ``H = LayerNorm(X + Attention(X, Y))``.
* :class:`SAB` — self-attention block ``MAB(X, X)``.
* :class:`ISAB` — induced self-attention with ``m`` inducing points
  (linear instead of quadratic in the set size).
* :class:`PMA` — pooling by multihead attention onto ``k`` seed vectors
  (the permutation-invariant reduction).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init as initializers
from .layers import MLP, Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["MultiheadAttention", "MAB", "SAB", "ISAB", "PMA", "LayerNorm"]


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale/shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / F.sqrt(variance + self.eps)
        return normalized * self.gain + self.bias


class MultiheadAttention(Module):
    """Scaled dot-product attention, ``(B, L, D)`` in and out.

    ``key_mask`` is a ``(B, L_k)`` boolean/float array; masked (0) key
    positions receive effectively zero attention — this is how ragged sets
    are handled after padding.
    """

    def __init__(self, dim: int, num_heads: int = 4, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.project_q = Linear(dim, dim, rng=rng)
        self.project_k = Linear(dim, dim, rng=rng)
        self.project_v = Linear(dim, dim, rng=rng)
        self.project_out = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, D) -> (B, h, L, d)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def forward(
        self, query: Tensor, key_value: Tensor, key_mask: np.ndarray | None = None
    ) -> Tensor:
        batch, len_q = query.shape[0], query.shape[1]
        len_k = key_value.shape[1]
        q = self._split_heads(self.project_q(query), batch, len_q)
        k = self._split_heads(self.project_k(key_value), batch, len_k)
        v = self._split_heads(self.project_v(key_value), batch, len_k)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if key_mask is not None:
            # Additive mask: -1e9 on padded keys, broadcast over heads/queries.
            additive = np.where(
                np.asarray(key_mask, dtype=bool), 0.0, -1e9
            )[:, None, None, :]
            scores = scores + Tensor(additive)
        weights = F.softmax(scores, axis=-1)
        attended = weights @ v  # (B, h, Lq, d)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, len_q, self.dim)
        return self.project_out(merged)


class MAB(Module):
    """Multihead attention block: attention + residual + rFF + LayerNorms."""

    def __init__(self, dim: int, num_heads: int = 4, ff_hidden: int | None = None,
                 rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.attention = MultiheadAttention(dim, num_heads, rng=rng)
        self.norm_attention = LayerNorm(dim)
        self.feed_forward = MLP(
            dim, [ff_hidden or dim], dim, activation="relu",
            out_activation="identity", rng=rng,
        )
        self.norm_output = LayerNorm(dim)

    def forward(self, x: Tensor, y: Tensor, key_mask=None) -> Tensor:
        hidden = self.norm_attention(x + self.attention(x, y, key_mask))
        return self.norm_output(hidden + self.feed_forward(hidden))


class SAB(Module):
    """Self-attention block: elements attend to the rest of their set."""

    def __init__(self, dim: int, num_heads: int = 4, rng=None):
        super().__init__()
        self.block = MAB(dim, num_heads, rng=rng)

    def forward(self, x: Tensor, key_mask=None) -> Tensor:
        return self.block(x, x, key_mask)


class ISAB(Module):
    """Induced self-attention: attend through ``m`` learned inducing points.

    Cost is ``O(L * m)`` instead of ``O(L^2)`` — the variant the Set
    Transformer paper recommends for large sets.
    """

    def __init__(self, dim: int, num_inducing: int = 8, num_heads: int = 4, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.inducing = Parameter(
            initializers.glorot_uniform((1, num_inducing, dim), rng)
        )
        self.block_in = MAB(dim, num_heads, rng=rng)
        self.block_out = MAB(dim, num_heads, rng=rng)

    def forward(self, x: Tensor, key_mask=None) -> Tensor:
        batch = x.shape[0]
        # Broadcast the (1, m, D) parameter across the batch via an add, so
        # gradients flow back into the inducing points.
        seeds = self.inducing + Tensor(np.zeros((batch, 1, 1)))
        induced = self.block_in(seeds, x, key_mask)
        return self.block_out(x, induced)


class PMA(Module):
    """Pooling by multihead attention onto ``k`` seed vectors.

    The permutation-invariant reduction of the Set Transformer; with
    ``k = 1`` the output is one vector per set, matching DeepSets pooling.
    """

    def __init__(self, dim: int, num_seeds: int = 1, num_heads: int = 4, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.seeds = Parameter(initializers.glorot_uniform((1, num_seeds, dim), rng))
        self.block = MAB(dim, num_heads, rng=rng)

    def forward(self, x: Tensor, key_mask=None) -> Tensor:
        batch = x.shape[0]
        seeds = self.seeds + Tensor(np.zeros((batch, 1, 1)))
        return self.block(seeds, x, key_mask)
