"""Model serialization and size accounting.

The paper reports memory as the size of the pickled weight file (§8.2.2);
:func:`pickled_size_bytes` reproduces that measurement for arbitrary Python
structures, while :func:`save_state` / :func:`load_state` store weight dicts
compactly as ``.npz`` archives with float32 weights (what one would ship).

Persistence is crash-safe: :func:`save_state` writes to a temporary file,
fsyncs, and atomically renames, so a crash mid-write can never leave a
half-written archive under the destination path.  Archives embed a CRC32
checksum that :func:`load_state` validates, turning truncated or bit-rotted
files into a clear :class:`CorruptStateError` instead of a bare
``zipfile``/``KeyError`` deep in numpy.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..reliability.faults import corrupt_state_file
from .module import Module

__all__ = [
    "CorruptStateError",
    "save_state",
    "load_state",
    "pickled_size_bytes",
    "state_dict_bytes",
]

# Reserved archive entry holding the CRC32 of all weight arrays; the name
# cannot collide with a parameter because dotted parameter names never
# start with a dunder segment.
_CHECKSUM_KEY = "__checksum__"

# Prefix under which frozen inference plans are embedded alongside the
# weights (same dunder-segment reasoning as the checksum key).  The
# checksum covers plan arrays too, so plan corruption surfaces as
# CorruptStateError rather than a bad prediction.
_PLAN_PREFIX = "__plan__/"


class CorruptStateError(RuntimeError):
    """A weight archive is unreadable, truncated, or fails validation."""

    def __init__(self, path, reason: str):
        super().__init__(f"corrupt state file {Path(path)}: {reason}")
        self.path = Path(path)
        self.reason = reason


def _state_checksum(state: dict[str, np.ndarray]) -> int:
    """CRC32 over names, dtypes, shapes, and raw bytes of all arrays."""
    crc = 0
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        header = f"{name}:{array.dtype.str}:{array.shape}".encode()
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc


# Fixed zip-entry timestamp (the zip epoch): archives written from the
# same weights must be byte-identical regardless of wall-clock time.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def save_state(module: Module, path: str | Path, dtype=np.float32,
               plans=None) -> None:
    """Atomically write a module's weights to ``path`` as a checksummed npz.

    The archive is written to ``path + ".tmp"``, flushed and fsynced, then
    renamed over ``path`` — readers never observe a partial file.

    Output is byte-deterministic: entries are written in sorted order with
    a fixed zip timestamp (``np.savez_compressed`` would stamp each entry
    with the current time, so re-saving identical weights in a different
    second would change the file).  Two builds with the same seed therefore
    produce bit-identical archives.

    ``plans`` may be a :class:`repro.infer.PlanSet`; its frozen variants
    are embedded under a reserved prefix (covered by the checksum) so
    :func:`load_state` can restore compiled inference without re-freezing.
    """
    path = Path(path)
    state = {
        name: array.astype(dtype) for name, array in module.state_dict().items()
    }
    if plans is not None:
        for name, array in plans.to_arrays().items():
            state[_PLAN_PREFIX + name] = np.asanyarray(array)
    state[_CHECKSUM_KEY] = np.asarray([_state_checksum(state)], dtype=np.int64)
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            with zipfile.ZipFile(handle, "w", zipfile.ZIP_DEFLATED) as archive:
                for name in sorted(state):
                    buffer = io.BytesIO()
                    np.lib.format.write_array(buffer, np.asanyarray(state[name]))
                    info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
                    info.compress_type = zipfile.ZIP_DEFLATED
                    archive.writestr(info, buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    corrupt_state_file(path)  # test-only fault-injection hook


def load_state(module: Module, path: str | Path):
    """Load and validate weights written by :func:`save_state`.

    Raises :class:`CorruptStateError` (naming the file) when the archive is
    unreadable, fails its checksum, or does not match the module's
    parameters; raises ``FileNotFoundError`` for a missing file.

    Returns the :class:`repro.infer.PlanSet` embedded in the archive (with
    staleness tracking rebound to the freshly loaded weights), or ``None``
    for archives written without plans — older archives keep loading
    unchanged.
    """
    path = Path(path)
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        struct.error,
        ValueError,
        EOFError,
        KeyError,
        OSError,
        # zipfile raises these for a corrupted compression-method or
        # flag field rather than BadZipFile.
        NotImplementedError,
        IndexError,
    ) as error:
        raise CorruptStateError(path, f"unreadable archive ({error})") from error
    stored = state.pop(_CHECKSUM_KEY, None)
    if stored is not None and int(stored[0]) != _state_checksum(state):
        raise CorruptStateError(path, "checksum mismatch (bit rot or tampering)")
    plan_arrays = {
        name[len(_PLAN_PREFIX):]: state.pop(name)
        for name in list(state)
        if name.startswith(_PLAN_PREFIX)
    }
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise CorruptStateError(
            path, f"archive does not match the module ({error})"
        ) from error
    if not plan_arrays:
        return None
    from ..infer.plan import PlanError, PlanSet

    try:
        plans = PlanSet.from_arrays(plan_arrays)
    except (PlanError, KeyError, ValueError) as error:
        raise CorruptStateError(
            path, f"embedded inference plans are invalid ({error})"
        ) from error
    return plans.rebind(module)


def pickled_size_bytes(obj) -> int:
    """Size of ``pickle.dumps(obj)`` — the paper's memory metric."""
    buffer = io.BytesIO()
    pickle.dump(obj, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    return buffer.getbuffer().nbytes


def state_dict_bytes(module: Module, dtype=np.float32) -> int:
    """Pickled size of the float32 weight dict (model-only footprint)."""
    state = {
        name: array.astype(dtype) for name, array in module.state_dict().items()
    }
    return pickled_size_bytes(state)
