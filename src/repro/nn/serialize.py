"""Model serialization and size accounting.

The paper reports memory as the size of the pickled weight file (§8.2.2);
:func:`pickled_size_bytes` reproduces that measurement for arbitrary Python
structures, while :func:`save_state` / :func:`load_state` store weight dicts
compactly as ``.npz`` archives with float32 weights (what one would ship).
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "save_state",
    "load_state",
    "pickled_size_bytes",
    "state_dict_bytes",
]


def save_state(module: Module, path: str | Path, dtype=np.float32) -> None:
    """Write a module's weights to ``path`` as a compressed npz archive."""
    state = {
        name: array.astype(dtype) for name, array in module.state_dict().items()
    }
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **state)


def load_state(module: Module, path: str | Path) -> None:
    """Load weights written by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


def pickled_size_bytes(obj) -> int:
    """Size of ``pickle.dumps(obj)`` — the paper's memory metric."""
    buffer = io.BytesIO()
    pickle.dump(obj, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    return buffer.getbuffer().nbytes


def state_dict_bytes(module: Module, dtype=np.float32) -> int:
    """Pickled size of the float32 weight dict (model-only footprint)."""
    state = {
        name: array.astype(dtype) for name, array in module.state_dict().items()
    }
    return pickled_size_bytes(state)
