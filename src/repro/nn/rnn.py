"""Recurrent layers: LSTM and GRU.

These exist to reproduce Figure 7 of the paper (sum-of-digits), where the
DeepSets and compressed-DeepSets models are compared against LSTM and GRU
sequence models.  Sequences are dense ``(batch, time, features)`` tensors
with an optional boolean mask for padded positions: a masked step leaves the
hidden state unchanged, so padding at the tail is equivalent to a shorter
sequence.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init as initializers
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU"]


class _GateCell(Module):
    """Shared plumbing: stacked input/hidden projections for gated cells."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_gates: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_width = num_gates * hidden_size
        self.w_input = Parameter(
            initializers.glorot_uniform((input_size, gate_width), rng)
        )
        self.w_hidden = Parameter(
            initializers.glorot_uniform((hidden_size, gate_width), rng)
        )
        self.bias = Parameter(np.zeros(gate_width))

    def _gates(self, x: Tensor, h: Tensor) -> Tensor:
        return x @ self.w_input + h @ self.w_hidden + self.bias

    def _slice(self, gates: Tensor, index: int) -> Tensor:
        start = index * self.hidden_size
        return gates[:, start : start + self.hidden_size]


class LSTMCell(_GateCell):
    """One LSTM step; gate order is (input, forget, cell, output)."""

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__(input_size, hidden_size, num_gates=4, rng=rng)
        # Initialize the forget-gate bias to 1 — the standard trick that
        # keeps gradients alive early in training.
        self.bias.data[hidden_size : 2 * hidden_size] = 1.0

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]):
        h_prev, c_prev = state
        gates = self._gates(x, h_prev)
        i = F.sigmoid(self._slice(gates, 0))
        f = F.sigmoid(self._slice(gates, 1))
        g = F.tanh(self._slice(gates, 2))
        o = F.sigmoid(self._slice(gates, 3))
        c = f * c_prev + i * g
        h = o * F.tanh(c)
        return h, c


class GRUCell(_GateCell):
    """One GRU step; gate order is (reset, update, candidate)."""

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__(input_size, hidden_size, num_gates=3, rng=rng)

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        # Candidate gate uses the *reset-scaled* hidden state, so compute
        # the first two gates from the stacked projection and the candidate
        # separately.
        joint = x @ self.w_input + h_prev @ self.w_hidden + self.bias
        r = F.sigmoid(self._slice(joint, 0))
        z = F.sigmoid(self._slice(joint, 1))
        # Recompute candidate with reset applied to the hidden projection.
        start = 2 * self.hidden_size
        x_cand = (x @ self.w_input)[:, start : start + self.hidden_size]
        h_cand = (h_prev @ self.w_hidden)[:, start : start + self.hidden_size]
        bias_cand = self.bias[start : start + self.hidden_size]
        n = F.tanh(x_cand + r * h_cand + bias_cand)
        return (1.0 - z) * n + z * h_prev


class _Recurrent(Module):
    """Run a cell across time with optional padding mask."""

    def __init__(self, cell: Module):
        super().__init__()
        self.cell = cell

    @property
    def hidden_size(self) -> int:
        return self.cell.hidden_size

    def _initial(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.cell.hidden_size)))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        raise NotImplementedError


class LSTM(_Recurrent):
    """LSTM over ``(batch, time, features)``; returns the final hidden state.

    ``mask`` is a boolean/float array ``(batch, time)``; masked (0) steps
    keep the previous hidden and cell state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__(LSTMCell(input_size, hidden_size, rng=rng))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, time = x.shape[0], x.shape[1]
        h = self._initial(batch)
        c = self._initial(batch)
        for t in range(time):
            x_t = x[:, t, :]
            h_new, c_new = self.cell(x_t, (h, c))
            if mask is not None:
                m = Tensor(np.asarray(mask[:, t], dtype=np.float64)[:, None])
                h = h_new * m + h * (1.0 - m)
                c = c_new * m + c * (1.0 - m)
            else:
                h, c = h_new, c_new
        return h


class GRU(_Recurrent):
    """GRU over ``(batch, time, features)``; returns the final hidden state."""

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__(GRUCell(input_size, hidden_size, rng=rng))

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, time = x.shape[0], x.shape[1]
        h = self._initial(batch)
        for t in range(time):
            x_t = x[:, t, :]
            h_new = self.cell(x_t, h)
            if mask is not None:
                m = Tensor(np.asarray(mask[:, t], dtype=np.float64)[:, None])
                h = h_new * m + h * (1.0 - m)
            else:
                h = h_new
        return h
