"""Standard layers: Linear, Embedding, activations, Dropout, Sequential, MLP.

These are the building blocks the paper's models are assembled from:
shared element embeddings, small dense ``phi``/``rho`` networks with ReLU
hidden layers, and sigmoid outputs (Table 1 of the paper).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import functional as F
from . import init as initializers
from .module import Module, ModuleList, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Embedding",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
    "resolve_activation",
]


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Glorot-uniform weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight_init: Callable = initializers.glorot_uniform,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    This is the shared element embedding of the DeepSets architecture; in
    the compressed variant two smaller instances hold the quotient and
    remainder vocabularies.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        scale: float = 0.05,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            initializers.uniform((num_embeddings, embedding_dim), rng, scale=scale)
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return F.gather(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Softplus(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.softplus(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS: dict[str, Callable[[], Module]] = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "identity": Identity,
    "linear": Identity,
}


def resolve_activation(name: str) -> Module:
    """Instantiate an activation module from its name."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Sequential):
    """A dense stack: ``in -> hidden... -> out`` with a chosen nonlinearity.

    Matches the paper's sweep vocabulary: ``hidden`` is the neurons-per-layer
    list (1 or 2 layers in the evaluation), ``activation`` the hidden
    nonlinearity, and ``out_activation`` the output head (sigmoid for every
    task in Table 1).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        activation: str = "relu",
        out_activation: str = "identity",
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng()
        layers: list[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(resolve_activation(activation))
            previous = width
        layers.append(Linear(previous, out_features, rng=rng))
        layers.append(resolve_activation(out_activation))
        super().__init__(*layers)
        self.in_features = in_features
        self.out_features = out_features
