"""Learning over Sets for Databases — reproduction library.

A full reimplementation of Davitkova, Gjurovski & Michel, *Learning over
Sets for Databases* (EDBT 2024): learned set indexes, learned set
cardinality estimators, and learned set Bloom filters built on a DeepSets
architecture with per-element compression and a hybrid (guided-learning)
structure with error bounds.

Subpackages
-----------
``repro.nn``        from-scratch numpy autograd + NN framework
``repro.sets``      set collections, vocabularies, exact ground truth
``repro.baselines`` B+ tree, Bloom filter, HashMap competitors
``repro.core``      the paper's contribution (LSM/CLSM models, hybrid)
``repro.datasets``  synthetic stand-ins for RW / Tweets / SD
``repro.engine``    mini relational engine (PostgreSQL stand-in)
``repro.obs``       observability: metrics registry, tracing, profiler
``repro.reliability`` guarded serving, health counters, fault injection
``repro.serve``     concurrent query serving: micro-batching, caching, swap
``repro.shard``     sharded scale-out: parallel training, scatter-gather
``repro.maintain``  incremental maintenance: deltas, staleness, refresh
``repro.adapt``     workload-adaptive training, drift-aware targeted refresh
``repro.infer``     frozen-plan compiled inference, quantized variants
``repro.scenario``  declarative robustness scenarios with SLO grading
``repro.bench``     benchmark harness regenerating every table & figure

Quickstart
----------
>>> from repro import SetCollection, LearnedCardinalityEstimator
>>> collection = SetCollection([[1, 2, 3], [2, 3], [1, 4]])
>>> estimator = LearnedCardinalityEstimator.build(collection)
>>> estimator.estimate((2, 3))  # doctest: +SKIP
2.1
"""

from .core import (
    CompressedDeepSetsModel,
    DeepSetsModel,
    ElementCompressor,
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    LogMinMaxScaler,
    ModelConfig,
    OutlierRemovalConfig,
    PredicateCardinalitySuite,
    TrainConfig,
    mean_q_error,
    q_error,
)
from .infer import (
    GateConfig,
    InferencePlan,
    PlanSet,
    attached_plans,
    freeze,
    freeze_structure,
    refreeze_like,
)
from .obs import (
    MetricsRegistry,
    Tracer,
    TrainingProfiler,
    get_profiler,
    get_tracer,
    global_registry,
    trace,
)
from .reliability import (
    FaultInjector,
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedPredicateSuite,
    GuardedSetIndex,
    HealthCounters,
)
from .serve import BatchPolicy, ServerStats, SetServer
from .sets import (
    DEFAULT_PREDICATES,
    InvertedIndex,
    Predicate,
    SetCollection,
    Vocabulary,
    as_predicate,
)
from .shard import (
    Shard,
    ShardBuildError,
    ShardedBloomFilter,
    ShardedBuilder,
    ShardedCardinalityEstimator,
    ShardedSetIndex,
    ShardPlan,
)

__version__ = "1.0.0"

__all__ = [
    "SetCollection",
    "InvertedIndex",
    "Vocabulary",
    "LearnedCardinalityEstimator",
    "LearnedSetIndex",
    "LearnedBloomFilter",
    "DeepSetsModel",
    "CompressedDeepSetsModel",
    "ElementCompressor",
    "ModelConfig",
    "TrainConfig",
    "OutlierRemovalConfig",
    "LogMinMaxScaler",
    "q_error",
    "mean_q_error",
    "Predicate",
    "DEFAULT_PREDICATES",
    "as_predicate",
    "PredicateCardinalitySuite",
    "GuardedPredicateSuite",
    "GuardedCardinalityEstimator",
    "GuardedSetIndex",
    "GuardedBloomFilter",
    "HealthCounters",
    "FaultInjector",
    "InferencePlan",
    "PlanSet",
    "GateConfig",
    "freeze",
    "freeze_structure",
    "refreeze_like",
    "attached_plans",
    "SetServer",
    "BatchPolicy",
    "ServerStats",
    "MetricsRegistry",
    "Tracer",
    "TrainingProfiler",
    "get_profiler",
    "get_tracer",
    "global_registry",
    "trace",
    "Shard",
    "ShardPlan",
    "ShardedBuilder",
    "ShardBuildError",
    "ShardedCardinalityEstimator",
    "ShardedSetIndex",
    "ShardedBloomFilter",
    "__version__",
]
