"""Bounded, thread-safe record of the served query stream.

The workload-feedback loop (ROADMAP item 5) starts here: every query the
serving layer answers is recorded as a ``(predicate spec, canonical
query)`` key with a frequency count, plus — on a sampled basis — the
q-error actually observed against the paired exact structure.  The log is
the ground truth for

* :func:`repro.adapt.sample_from_workload` — frequency-weighted refresh
  training sets;
* :func:`repro.adapt.probe_shard_errors` — attributing observed error to
  individual shards (Algorithm 2's local bounds over shard offsets).

Memory is bounded: past ``capacity`` distinct keys, the lowest-frequency
entry (oldest last-seen among ties) is evicted, so sustained skew keeps
exactly the hot keys — the ones refresh training should care about.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterable

__all__ = ["WorkloadEntry", "WorkloadLog"]


@dataclass
class WorkloadEntry:
    """One observed ``(spec, canonical)`` key and its aggregates."""

    spec: str
    canonical: tuple[int, ...]
    count: int
    last_seq: int
    q_error_sum: float = 0.0
    q_error_count: int = 0
    q_error_max: float = 0.0

    @property
    def mean_q_error(self) -> float:
        """Mean observed q-error (NaN before any truth observation)."""
        if self.q_error_count == 0:
            return math.nan
        return self.q_error_sum / self.q_error_count

    def as_dict(self) -> dict:
        return {
            "spec": self.spec,
            "query": list(self.canonical),
            "count": self.count,
            "mean_q_error": (
                self.mean_q_error if self.q_error_count else None
            ),
            "max_q_error": self.q_error_max if self.q_error_count else None,
        }


class WorkloadLog:
    """Bounded frequency/error sketch over the served query stream.

    Thread-safe: the serving layer records from request threads and pool
    dispatchers while the refresher reads snapshots concurrently.  Keys
    are ``(predicate spec, canonical query)`` — the same query under two
    predicates is two independent entries, matching the serving cache.

    ``observe_every``: when positive, :meth:`record` returns ``True`` for
    every N-th recorded query, asking the caller to compute the exact
    answer and report the observed q-error back via :meth:`observe`.
    Truth sampling is the expensive half (an exact intersection per
    observation); the frequency half is a dict bump.
    """

    def __init__(self, capacity: int = 4096, observe_every: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if observe_every < 0:
            raise ValueError("observe_every cannot be negative")
        self.capacity = int(capacity)
        self.observe_every = int(observe_every)
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, tuple[int, ...]], WorkloadEntry] = {}
        self._seq = 0
        self._total = 0
        self._evictions = 0

    # -- recording -------------------------------------------------------------

    @staticmethod
    def _canonical(query: Iterable[int]) -> tuple[int, ...]:
        return tuple(sorted(set(query)))

    def record(self, spec: str, query: Iterable[int]) -> bool:
        """Count one served query; True when a truth observation is due."""
        canonical = self._canonical(query)
        key = (str(spec), canonical)
        with self._lock:
            self._seq += 1
            self._total += 1
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = WorkloadEntry(
                    spec=key[0], canonical=canonical, count=1, last_seq=self._seq
                )
                self._evict_locked()
            else:
                entry.count += 1
                entry.last_seq = self._seq
            return (
                self.observe_every > 0
                and self._seq % self.observe_every == 0
            )

    def observe(self, spec: str, query: Iterable[int], q_error: float) -> None:
        """Report the q-error observed for one served answer.

        Non-finite values are dropped (a failed truth computation must not
        poison the aggregates).  The key is created if eviction already
        dropped it — an observation is also an occurrence signal.
        """
        if not math.isfinite(q_error):
            return
        canonical = self._canonical(query)
        key = (str(spec), canonical)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._seq += 1
                entry = self._entries[key] = WorkloadEntry(
                    spec=key[0], canonical=canonical, count=1, last_seq=self._seq
                )
                self._evict_locked()
            entry.q_error_sum += float(q_error)
            entry.q_error_count += 1
            entry.q_error_max = max(entry.q_error_max, float(q_error))

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity:
            victim = min(
                self._entries, key=lambda k: (
                    self._entries[k].count, self._entries[k].last_seq
                )
            )
            del self._entries[victim]
            self._evictions += 1

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_records(self) -> int:
        """Queries recorded over the log's lifetime (evictions included)."""
        with self._lock:
            return self._total

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def entries(self) -> list[WorkloadEntry]:
        """A point-in-time copy of every entry (unordered)."""
        with self._lock:
            return [
                WorkloadEntry(**vars(entry)) for entry in self._entries.values()
            ]

    def top(self, n: int | None = None) -> list[WorkloadEntry]:
        """Entries by descending frequency (ties: most recently seen)."""
        snapshot = self.entries()
        snapshot.sort(key=lambda e: (-e.count, -e.last_seq))
        return snapshot if n is None else snapshot[:n]

    def recent(self, n: int | None = None) -> list[WorkloadEntry]:
        """Entries by recency (the *current* observed distribution)."""
        snapshot = self.entries()
        snapshot.sort(key=lambda e: -e.last_seq)
        return snapshot if n is None else snapshot[:n]

    def mean_observed_q_error(self) -> float:
        """Count-of-observations-weighted mean q-error (NaN without any)."""
        with self._lock:
            total = sum(e.q_error_sum for e in self._entries.values())
            count = sum(e.q_error_count for e in self._entries.values())
        return total / count if count else math.nan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def as_dict(self, top: int = 8) -> dict:
        """JSON-safe summary (the ``STALENESS`` verb's workload section)."""
        mean = self.mean_observed_q_error()
        return {
            "capacity": self.capacity,
            "observe_every": self.observe_every,
            "distinct_keys": len(self),
            "total_records": self.total_records,
            "evictions": self.evictions,
            "mean_observed_q_error": mean if math.isfinite(mean) else None,
            "top": [entry.as_dict() for entry in self.top(top)],
        }
