"""Workload-adaptive refresh: frequency-weighted retraining, targeted swaps.

:class:`AdaptiveRefresher` extends the maintain layer's
:class:`~repro.maintain.BackgroundRefresher` with the feedback loop
ROADMAP item 5 calls for:

* its staleness observations include *per-shard* observed q-error
  (:class:`~repro.adapt.ShardStalenessTracker`, filled by
  :func:`~repro.adapt.probe_shard_errors` over the workload log), so the
  policy can trip individual ``local_q_error:shard<i>`` reasons;
* when **only** per-shard reasons trip, it rebuilds just those shards —
  frequency-weighted by the observed workload — and publishes through
  ``router.with_parts`` + the server's snapshot swap, leaving every other
  shard's part object untouched (byte-identical, and never a torn router);
* full rebuilds (mixed or global reasons) keep the parent's behavior.

:func:`workload_shard_rebuilder` builds one shard's replacement part:
exhaustive base pairs over the shard's *current* collection (coverage),
observed shard-local queries merged in with their frequencies as sample
weights (:func:`repro.core.hybrid.guided_fit`'s weighted path), and the
hottest still-misestimated observed queries pinned into the part's exact
auxiliary — guided learning's eviction idea (§6) applied to the observed
workload instead of the training set.  :func:`workload_rebuilder` is the
unsharded analogue, augmenting the base corpus with
:func:`~repro.adapt.sample_from_workload`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

import numpy as np

from ..core.cardinality import LearnedCardinalityEstimator
from ..core.config import ModelConfig
from ..core.index import LearnedSetIndex
from ..core.membership import LearnedBloomFilter
from ..core.qerror import q_error
from ..core.scaling import LogMinMaxScaler
from ..core.training import TrainConfig
from ..maintain.policy import StalenessPolicy, StalenessState, tripped_shards
from ..maintain.refresher import (
    BackgroundRefresher,
    RefreshError,
    rewrap_like,
    unwrap_structure,
)
from ..sets.inverted import InvertedIndex
from ..sets.subsets import cardinality_training_pairs, index_training_pairs
from .sampler import sample_from_workload
from .tracker import ShardStalenessTracker, probe_shard_errors
from .workload import WorkloadEntry, WorkloadLog

__all__ = [
    "AdaptiveRefresher",
    "workload_rebuilder",
    "workload_shard_rebuilder",
]

_ROUTER_TASKS = {
    "ShardedCardinalityEstimator": "cardinality",
    "ShardedSetIndex": "index",
    "ShardedBloomFilter": "bloom",
}


def _observed_for_shard(
    workload: WorkloadLog, ceiling: int, budget: int
) -> list[WorkloadEntry]:
    """Hottest usable subset entries that can reach a shard with ``ceiling``.

    The subset skip rule is ``max(query) <= ceiling``, so entries above it
    never fan to the shard and carry no signal for its model.  Empty and
    out-of-range queries are dropped here — the same hygiene as
    :func:`~repro.adapt.sample_from_workload`.
    """
    usable = [
        entry
        for entry in workload.top()
        if entry.spec == "subset"
        and entry.canonical
        and entry.canonical[0] >= 0
        and entry.canonical[-1] <= ceiling
    ]
    return usable[:budget]


def _merge_observed(
    subsets: list[tuple[int, ...]],
    targets: list[float],
    weights: list[float],
    observed: list[WorkloadEntry],
    label_of: Callable[[tuple[int, ...]], float | None],
) -> None:
    """Fold observed entries into a base corpus, in place.

    An entry already present in the corpus adds its frequency to that
    sample's weight; a novel entry joins with its exact label.  Entries
    whose label does not exist (unfindable index queries) are skipped.
    """
    index_of = {canonical: row for row, canonical in enumerate(subsets)}
    for entry in observed:
        row = index_of.get(entry.canonical)
        if row is not None:
            weights[row] += float(entry.count)
            continue
        label = label_of(entry.canonical)
        if label is None:
            continue
        index_of[entry.canonical] = len(subsets)
        subsets.append(entry.canonical)
        targets.append(float(label))
        weights.append(1.0 + float(entry.count))


def workload_shard_rebuilder(
    workload: WorkloadLog,
    *,
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    removal=None,
    max_subset_size: int | None = 4,
    max_training_samples: int | None = None,
    num_negative_samples: int | None = None,
    error_range_length: int = 100,
    observed_budget: int = 256,
    pin_budget: int = 32,
    pin_q_error: float = 2.0,
    base_seed: int = 1,
) -> Callable[[Any, int], Any]:
    """A ``rebuild_shard(router, shard_id) -> part`` callable.

    Retrains exactly one shard over its *current* collection slice with
    the observed workload folded in (frequencies as sample weights), then
    rewraps the new part the way the old one was wrapped.  Each rebuild
    derives its seed from ``base_seed``, the shard id, and a per-factory
    generation counter, so repeated refreshes of the same shard explore
    fresh initializations while staying replayable.
    """
    model_config = model_config or ModelConfig()
    train_config = train_config or TrainConfig(epochs=6)
    state = {"generation": 0}

    def rebuild_shard(router: Any, shard_id: int) -> Any:
        task = _ROUTER_TASKS.get(type(router).__name__)
        if task is None:
            raise RefreshError(
                f"cannot shard-rebuild a {type(router).__name__}"
            )
        state["generation"] += 1
        shard = router.plan[shard_id]
        old_part = router.parts[shard_id]
        seed = base_seed + 1000 * (shard_id + 1) + state["generation"]
        rng = np.random.default_rng(seed)
        seeded_model = replace(model_config, seed=seed)
        seeded_train = replace(train_config, seed=seed)
        collection = shard.collection
        if task == "bloom":
            # Membership has no graded per-query error to weight by; a
            # targeted rebuild is a plain per-shard retrain.
            new_inner = LearnedBloomFilter.build(
                collection,
                model_config=seeded_model,
                train_config=replace(seeded_train, loss="bce"),
                max_subset_size=max_subset_size,
                max_positive_samples=max_training_samples,
                num_negative_samples=num_negative_samples,
            )
            return rewrap_like(old_part, new_inner)
        exact_local = InvertedIndex(collection)
        observed = _observed_for_shard(
            workload, collection.max_element_id(), observed_budget
        )
        if task == "cardinality":
            base_subsets, base_targets = cardinality_training_pairs(
                collection,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
            subsets = [tuple(s) for s in base_subsets]
            targets = [float(t) for t in np.asarray(base_targets)]
            weights = [1.0] * len(subsets)
            _merge_observed(
                subsets, targets, weights, observed,
                lambda c: float(exact_local.cardinality(c)),
            )
            scaler = LogMinMaxScaler.for_cardinality(
                exact_local.max_element_cardinality()
            )
            new_inner = LearnedCardinalityEstimator.from_training_data(
                subsets,
                np.asarray(targets, dtype=np.float64),
                max_element_id=collection.max_element_id(),
                scaler=scaler,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                rng=rng,
                sample_weights=np.asarray(weights, dtype=np.float64),
            )
            _pin_hot_cardinality(
                new_inner, exact_local, observed, pin_budget, pin_q_error
            )
        else:
            base_subsets, base_positions = index_training_pairs(
                collection,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
            subsets = [tuple(s) for s in base_subsets]
            targets = [float(p) for p in np.asarray(base_positions)]
            weights = [1.0] * len(subsets)

            def local_position(canonical):
                position = exact_local.first_position(canonical)
                return None if position is None else float(position)

            _merge_observed(subsets, targets, weights, observed, local_position)
            new_inner = LearnedSetIndex.build(
                collection,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                error_range_length=error_range_length,
                training_pairs=(
                    subsets, np.asarray(targets, dtype=np.float64)
                ),
                sample_weights=np.asarray(weights, dtype=np.float64),
            )
            _pin_hot_index(new_inner, exact_local, observed, pin_budget)
        return rewrap_like(old_part, new_inner)

    return rebuild_shard


def _pin_hot_cardinality(
    part: LearnedCardinalityEstimator,
    exact_local: InvertedIndex,
    observed: list[WorkloadEntry],
    pin_budget: int,
    pin_q_error: float,
) -> None:
    """Pin still-misestimated hot queries into the part's exact auxiliary.

    Guided learning evicts *training* outliers into the auxiliary (§6);
    the workload-aware variant does the same for observed queries the
    refreshed model still gets wrong — the hottest first, bounded by
    ``pin_budget`` so the auxiliary cannot degenerate into a cache of the
    whole stream.
    """
    if pin_budget <= 0:
        return
    candidates = [e for e in observed if e.canonical not in part.auxiliary]
    if not candidates:
        return
    queries = [e.canonical for e in candidates]
    estimates = part.estimate_many(queries)
    truths = np.asarray(
        [exact_local.cardinality(c) for c in queries], dtype=np.float64
    )
    errors = q_error(estimates, truths)
    ranked = sorted(
        zip(candidates, errors, truths), key=lambda item: -item[0].count
    )
    pinned = 0
    for entry, error, truth in ranked:
        if pinned >= pin_budget:
            break
        if error > pin_q_error:
            part.auxiliary[entry.canonical] = int(truth)
            pinned += 1


def _pin_hot_index(
    part: LearnedSetIndex,
    exact_local: InvertedIndex,
    observed: list[WorkloadEntry],
    pin_budget: int,
) -> None:
    """Absorb hot observed positions through the index's own update path.

    ``insert_update`` stores a position only when it falls outside the
    query-time search window, so in-window hot queries cost nothing.
    """
    if pin_budget <= 0:
        return
    pinned = 0
    for entry in sorted(observed, key=lambda e: -e.count):
        if pinned >= pin_budget:
            break
        position = exact_local.first_position(entry.canonical)
        if position is None:
            continue
        part.insert_update(entry.canonical, int(position))
        pinned += 1


def workload_rebuilder(
    structure: Any,
    workload: WorkloadLog,
    *,
    collection=None,
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    removal=None,
    max_subset_size: int | None = 4,
    max_training_samples: int | None = None,
    num_samples: int = 512,
    novelty_fraction: float = 0.25,
    base_seed: int = 1,
) -> Callable[[Any], Any]:
    """A full-rebuild callable that folds the observed workload in.

    The unsharded counterpart of :func:`workload_shard_rebuilder`: base
    training pairs over the collection plus
    :func:`~repro.adapt.sample_from_workload`'s frequency-weighted
    observed/novelty mix, trained through the sample-weight path.  Only
    cardinality and index structures have a weighted path; anything else
    (Bloom filters, sharded routers reaching this as the *full* fallback)
    raises so callers wire :func:`repro.maintain.default_rebuilder`
    explicitly instead of silently losing the workload signal.
    """
    inner = unwrap_structure(structure)
    coll = getattr(inner, "collection", None) or collection
    if coll is None:
        raise ValueError(
            f"cannot rebuild a {type(inner).__name__} without its "
            "training collection: pass collection=..."
        )
    model_config = model_config or ModelConfig()
    train_config = train_config or TrainConfig(epochs=6)
    state = {"generation": 0}

    def rebuild(current_inner: Any) -> Any:
        state["generation"] += 1
        seed = base_seed + state["generation"]
        rng = np.random.default_rng(seed)
        seeded_model = replace(model_config, seed=seed)
        seeded_train = replace(train_config, seed=seed)
        exact = InvertedIndex(coll)
        if isinstance(current_inner, LearnedCardinalityEstimator):
            base_subsets, base_targets = cardinality_training_pairs(
                coll,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
            subsets = [tuple(s) for s in base_subsets]
            targets = [float(t) for t in np.asarray(base_targets)]
            weights = [1.0] * len(subsets)
            obs_subsets, obs_targets, obs_weights = sample_from_workload(
                workload, coll, exact,
                kind="cardinality",
                num_samples=num_samples,
                novelty_fraction=novelty_fraction,
                max_subset_size=max_subset_size or 6,
                rng=rng,
            )
            entries = [
                WorkloadEntry(
                    spec="subset", canonical=c, count=max(int(w), 1), last_seq=0
                )
                for c, w in zip(obs_subsets, obs_weights)
            ]
            _merge_observed(
                subsets, targets, weights, entries,
                lambda c: float(exact.cardinality(c)),
            )
            scaler = LogMinMaxScaler.for_cardinality(
                exact.max_element_cardinality()
            )
            return LearnedCardinalityEstimator.from_training_data(
                subsets,
                np.asarray(targets, dtype=np.float64),
                max_element_id=coll.max_element_id(),
                scaler=scaler,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                rng=rng,
                sample_weights=np.asarray(weights, dtype=np.float64),
            )
        if isinstance(current_inner, LearnedSetIndex):
            base_subsets, base_positions = index_training_pairs(
                coll,
                max_subset_size=max_subset_size,
                max_samples=max_training_samples,
                rng=rng,
            )
            subsets = [tuple(s) for s in base_subsets]
            targets = [float(p) for p in np.asarray(base_positions)]
            weights = [1.0] * len(subsets)
            obs_subsets, obs_targets, obs_weights = sample_from_workload(
                workload, coll, exact,
                kind="index",
                num_samples=num_samples,
                novelty_fraction=novelty_fraction,
                max_subset_size=max_subset_size or 6,
                rng=rng,
            )
            entries = [
                WorkloadEntry(
                    spec="subset", canonical=c, count=max(int(w), 1), last_seq=0
                )
                for c, w in zip(obs_subsets, obs_weights)
            ]

            def global_position(canonical):
                position = exact.first_position(canonical)
                return None if position is None else float(position)

            _merge_observed(subsets, targets, weights, entries, global_position)
            return LearnedSetIndex.build(
                coll,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                training_pairs=(
                    subsets, np.asarray(targets, dtype=np.float64)
                ),
                sample_weights=np.asarray(weights, dtype=np.float64),
            )
        raise RefreshError(
            f"workload_rebuilder has no weighted path for "
            f"{type(current_inner).__name__}; use default_rebuilder"
        )

    return rebuild


class AdaptiveRefresher(BackgroundRefresher):
    """Drift-aware refresher: observed workload in, targeted swaps out.

    Parameters beyond :class:`~repro.maintain.BackgroundRefresher`'s:

    workload:
        The :class:`~repro.adapt.WorkloadLog` the serving layer records
        into.  Registered as ``server.workload`` when the server has none
        (the serving hooks pick it up from there).
    tracker:
        Optional :class:`~repro.adapt.ShardStalenessTracker`.  When set
        (and the served structure is sharded), every staleness
        observation first runs :func:`~repro.adapt.probe_shard_errors`
        over the most recent workload entries, then reports the tracker's
        per-shard means as ``StalenessState.shard_q_errors``.
    shard_rebuild:
        ``shard_rebuild(router, shard_id) -> part``
        (:func:`workload_shard_rebuilder`).  Required for the targeted
        path; without it every trip falls back to a full rebuild.
    exact:
        Exact truth source for the probe; defaults to the server's paired
        exact structure.
    probe_entries:
        How many recent workload entries each probe scores.
    """

    def __init__(
        self,
        server: Any,
        rebuild: Callable[[Any], Any],
        *,
        workload: WorkloadLog,
        tracker: ShardStalenessTracker | None = None,
        shard_rebuild: Callable[[Any, int], Any] | None = None,
        exact: Any = None,
        probe_entries: int = 64,
        policy: StalenessPolicy | None = None,
        **kwargs,
    ):
        self.workload = workload
        self.tracker = tracker
        self.shard_rebuild = shard_rebuild
        self.probe_entries = int(probe_entries)
        self.partial_refreshes = 0
        self.shards_rebuilt = 0
        self._active_reasons: list[str] = []
        self._exact_override = exact
        super().__init__(server, rebuild, policy=policy, **kwargs)
        if getattr(server, "workload", None) is None:
            server.workload = workload
        self._register_adapt_metrics()

    # -- staleness -------------------------------------------------------------

    def _probe_exact(self) -> Any:
        if self._exact_override is not None:
            return self._exact_override
        return getattr(self.server, "_exact", None)

    def collect_state(self) -> StalenessState:
        state = super().collect_state()
        if self.tracker is not None:
            inner = unwrap_structure(self.server.structure)
            exact = self._probe_exact()
            if getattr(inner, "parts", None) is not None and exact is not None:
                probe_shard_errors(
                    inner,
                    exact,
                    self.workload.recent(self.probe_entries),
                    self.tracker,
                    max_queries=self.probe_entries,
                )
            errors = self.tracker.q_errors()
            state.shard_q_errors = errors or None
        return state

    # -- the targeted refresh --------------------------------------------------

    def refresh_now(self, reasons=("manual",)):
        self._active_reasons = list(reasons)
        try:
            return super().refresh_now(reasons)
        finally:
            self._active_reasons = []

    def _refresh(self, span: dict):
        shard_ids = tripped_shards(self._active_reasons)
        inner = unwrap_structure(self.server.structure)
        parts = getattr(inner, "parts", None)
        targeted = (
            bool(shard_ids)
            # *Only* per-shard reasons tripped: a global signal (deltas,
            # aux fraction, probe drift) still means a full rebuild.
            and len(shard_ids) == len(self._active_reasons)
            and parts is not None
            and len(shard_ids) < len(parts)
            and self.shard_rebuild is not None
        )
        if not targeted:
            snapshot = super()._refresh(span)
            if self.tracker is not None:
                # Every part was replaced; the old windows describe models
                # that no longer serve.
                for shard_id in range(self.tracker.num_shards):
                    self.tracker.reset(shard_id)
            return snapshot
        return self._refresh_partial(span, shard_ids)

    def _refresh_partial(self, span: dict, shard_ids: list[int]):
        old = self.server.structure
        old_inner = unwrap_structure(old)
        pre_mark = self.delta.mark()
        replacements = {
            shard_id: self.shard_rebuild(old_inner, shard_id)
            for shard_id in shard_ids
        }
        new_inner = old_inner.with_parts(replacements)
        snapshot = self._publish(old, old_inner, new_inner, pre_mark, span)
        if self.tracker is not None:
            for shard_id in shard_ids:
                self.tracker.reset(shard_id)
        self.partial_refreshes += 1
        self.shards_rebuilt += len(shard_ids)
        self._metric_partial.inc()
        self._metric_shards.inc(len(shard_ids))
        span["attrs"]["targeted_shards"] = ",".join(map(str, shard_ids))
        return snapshot

    # -- reporting -------------------------------------------------------------

    def _register_adapt_metrics(self) -> None:
        registry = self.server.registry
        self._metric_partial = registry.counter(
            "repro_adapt_partial_refreshes_total",
            "Targeted refreshes that rebuilt only tripped shards",
        )
        self._metric_shards = registry.counter(
            "repro_adapt_shards_rebuilt_total",
            "Individual shard parts rebuilt by targeted refreshes",
        )
        registry.gauge_function(
            "repro_adapt_workload_keys",
            "Distinct (predicate, query) keys currently in the workload log",
            lambda: float(len(self.workload)),
        )
        registry.gauge_function(
            "repro_adapt_workload_records_total",
            "Queries recorded into the workload log over its lifetime",
            lambda: float(self.workload.total_records),
        )
        registry.gauge_function(
            "repro_adapt_workload_evictions_total",
            "Workload-log entries evicted by the capacity bound",
            lambda: float(self.workload.evictions),
        )
        registry.gauge_function(
            "repro_adapt_observed_q_error",
            "Mean q-error observed against exact truth (NaN before any "
            "sampled observation)",
            self.workload.mean_observed_q_error,
        )
        registry.gauge_function(
            "repro_adapt_tripped_shards",
            "Shards whose windowed local q-error currently exceeds the "
            "policy threshold",
            self._count_tripped,
        )

    def _count_tripped(self) -> float:
        if self.tracker is None or self.policy.max_local_q_error is None:
            return 0.0
        threshold = self.policy.max_local_q_error
        return float(
            sum(1 for value in self.tracker.q_errors().values() if value > threshold)
        )

    def status(self) -> dict:
        base = super().status()
        base["adaptive"] = True
        base["partial_refreshes"] = self.partial_refreshes
        base["shards_rebuilt"] = self.shards_rebuilt
        return base

    def staleness_status(self) -> dict:
        """The ``STALENESS`` verb's JSON body."""
        state = self.collect_state()
        return {
            "adaptive": True,
            "policy": self.policy.as_dict(),
            "state": state.as_dict(),
            "tripped": self.policy.evaluate(state),
            "workload": self.workload.as_dict(),
            "tracker": self.tracker.as_dict() if self.tracker else None,
            "partial_refreshes": self.partial_refreshes,
            "shards_rebuilt": self.shards_rebuilt,
        }
