"""Turn an observed workload into a frequency-weighted training set.

``sample_from_workload`` is the bridge from :class:`~repro.adapt.WorkloadLog`
to :func:`repro.core.hybrid.guided_fit`'s new sample-weight path: observed
queries enter the refresh training set weighted by how often they were
served, mixed with a perturbation-sampled *novelty mass* so the refreshed
model does not overfit to yesterday's hot keys (the moving-workload
critique of learned structures — see PAPERS.md on Kraska et al. and ACE).

Labels are always exact, read from the paired
:class:`~repro.sets.InvertedIndex` — training on served (possibly stale or
model-estimated) answers would launder the very drift we are correcting.

Hygiene: empty queries, queries with out-of-universe elements, and
duplicate keys are dropped *here*, in one place, so malformed traffic
recorded into the log can never poison a refresh training set (the
edge-conformance suite pins this).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..sets.collection import SetCollection
from ..sets.inverted import InvertedIndex
from ..sets.subsets import sample_query_workload
from .workload import WorkloadEntry, WorkloadLog

__all__ = ["sample_from_workload"]


def _clean_observed(
    entries: Iterable[WorkloadEntry],
    spec: str,
    max_element_id: int,
) -> list[WorkloadEntry]:
    """Observed entries that are usable as training samples.

    Drops other predicates' entries, the empty query (it has no model
    path: the serving layer answers it exactly), and queries containing
    elements outside the trained universe (the model cannot embed them;
    the guarded facades answer them through the exact fallback anyway).
    Canonical keys are unique per spec by construction, so no dedup pass
    is needed beyond the key set itself.
    """
    cleaned: list[WorkloadEntry] = []
    for entry in entries:
        if entry.spec != spec:
            continue
        if not entry.canonical:
            continue
        if entry.canonical[0] < 0 or entry.canonical[-1] > max_element_id:
            continue
        cleaned.append(entry)
    return cleaned


def sample_from_workload(
    workload: WorkloadLog | Sequence[WorkloadEntry],
    collection: SetCollection,
    exact: InvertedIndex | None = None,
    *,
    kind: str = "cardinality",
    spec: str = "subset",
    num_samples: int = 512,
    novelty_fraction: float = 0.25,
    max_subset_size: int = 6,
    rng: np.random.Generator | None = None,
) -> tuple[list[tuple[int, ...]], np.ndarray, np.ndarray]:
    """Build ``(subsets, targets, weights)`` for a workload-guided refresh.

    * the observed mass — up to ``(1 - novelty_fraction) * num_samples``
      hottest usable entries, weighted by their observed frequency;
    * the novelty mass — perturbation-sampled queries over the *current*
      collection (:func:`repro.sets.subsets.sample_query_workload`), each
      with weight 1 — generalization pressure against pure replay.

    ``kind`` selects the label: ``"cardinality"`` (exact subset counts —
    0 is a legal label: the model learns toward the floor and guided
    eviction moves stubborn negatives into the exact auxiliary) or
    ``"index"`` (exact first positions; unfindable queries are dropped
    since no position exists to learn).
    """
    if kind not in ("cardinality", "index"):
        raise ValueError(f"kind must be 'cardinality' or 'index', not {kind!r}")
    if not 0.0 <= novelty_fraction <= 1.0:
        raise ValueError("novelty_fraction must lie in [0, 1]")
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = rng or np.random.default_rng()
    exact = exact or InvertedIndex(collection)
    entries = (
        workload.top() if isinstance(workload, WorkloadLog) else list(workload)
    )
    max_element_id = collection.max_element_id()
    usable = _clean_observed(entries, spec, max_element_id)
    usable.sort(key=lambda e: (-e.count, -e.last_seq))

    novelty_budget = int(round(novelty_fraction * num_samples))
    observed_budget = max(num_samples - novelty_budget, 0)

    subsets: list[tuple[int, ...]] = []
    targets: list[float] = []
    weights: list[float] = []
    seen: set[tuple[int, ...]] = set()

    for entry in usable[:observed_budget]:
        label = _label(kind, exact, entry.canonical)
        if label is None:
            continue
        subsets.append(entry.canonical)
        targets.append(label)
        weights.append(float(entry.count))
        seen.add(entry.canonical)

    if novelty_budget and len(collection):
        # Oversample: perturbed queries can collide with observed keys or
        # (for the index task) be unfindable; draw extras and keep the
        # first ``novelty_budget`` usable ones.
        candidates = sample_query_workload(
            collection,
            num_queries=novelty_budget * 2,
            rng=rng,
            max_subset_size=max_subset_size,
        )
        added = 0
        for query in candidates:
            if added >= novelty_budget:
                break
            canonical = tuple(sorted(set(query)))
            if not canonical or canonical in seen:
                continue
            label = _label(kind, exact, canonical)
            if label is None:
                continue
            subsets.append(canonical)
            targets.append(label)
            weights.append(1.0)
            seen.add(canonical)
            added += 1

    return (
        subsets,
        np.asarray(targets, dtype=np.float64),
        np.asarray(weights, dtype=np.float64),
    )


def _label(kind: str, exact: InvertedIndex, canonical: tuple[int, ...]):
    if kind == "cardinality":
        return float(exact.cardinality(canonical))
    position = exact.first_position(canonical)
    return None if position is None else float(position)
