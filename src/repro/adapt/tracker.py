"""Per-shard observed q-error tracking (Algorithm 2's bounds, by shard).

Algorithm 2 buckets a model's error over the predicted-position axis so a
bad region cannot inflate every lookup's search window.  This module
applies the same idea to *staleness*: the observed workload's error is
bucketed by shard offsets, so one drifting shard trips a per-shard policy
reason (``local_q_error:shard<i>``) instead of a global rebuild of all K
shards.

:class:`ShardStalenessTracker` keeps a sliding window of observations per
shard (recent traffic decides, matching how drift actually presents) with
a minimum-observation gate so a shard that served three queries cannot
trip on noise.  :func:`probe_shard_errors` fills the tracker from a
workload snapshot: for each observed query it computes every reachable
shard's *local* exact truth (matching positions restricted to the shard's
global position range) and compares it against that shard part's own
estimate, attributing error to exactly the shards that produced it.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable, Sequence

import numpy as np

from ..core.qerror import q_error
from ..sets.inverted import InvertedIndex
from ..sets.predicates import SUBSET
from .workload import WorkloadEntry

__all__ = ["ShardStalenessTracker", "probe_shard_errors"]


class ShardStalenessTracker:
    """Sliding-window observed q-error per shard, keyed by shard offsets.

    ``offsets`` are the plan's global start positions
    (:meth:`repro.shard.ShardPlan.offsets`); :meth:`shard_of` maps a
    global position back to its shard, which is how callers bucket
    position-space evidence.  Thread-safe: the probe writes from the
    refresher thread while ``STALENESS``/status reads concurrently.
    """

    def __init__(
        self,
        offsets: Sequence[int],
        window: int = 64,
        min_observations: int = 8,
    ):
        if not offsets:
            raise ValueError("offsets must name at least one shard")
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if (np.diff(self.offsets) <= 0).any() or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0 and strictly increase")
        self.window = int(window)
        self.min_observations = int(min_observations)
        self._lock = threading.Lock()
        self._errors: list[deque[float]] = [
            deque(maxlen=self.window) for _ in offsets
        ]
        self._recorded = [0] * len(offsets)

    @property
    def num_shards(self) -> int:
        return len(self.offsets)

    def shard_of(self, position: int) -> int:
        """The shard whose global position range contains ``position``."""
        return int(np.searchsorted(self.offsets, position, side="right") - 1)

    def record(self, shard_id: int, value: float) -> None:
        """Add one observed q-error to a shard's window."""
        if not 0 <= shard_id < self.num_shards:
            raise IndexError(f"shard id {shard_id} outside {self.num_shards} shards")
        if not math.isfinite(value):
            return
        with self._lock:
            self._errors[shard_id].append(float(value))
            self._recorded[shard_id] += 1

    def observations(self, shard_id: int) -> int:
        with self._lock:
            return len(self._errors[shard_id])

    def mean_q_error(self, shard_id: int) -> float:
        """Windowed mean (NaN below the minimum-observation gate)."""
        with self._lock:
            window = self._errors[shard_id]
            if len(window) < self.min_observations:
                return math.nan
            return sum(window) / len(window)

    def q_errors(self) -> dict[int, float]:
        """Per-shard windowed means for every shard past the gate.

        The shape :class:`repro.maintain.StalenessState.shard_q_errors`
        expects; sparsely observed shards are simply absent.
        """
        out: dict[int, float] = {}
        for shard_id in range(self.num_shards):
            value = self.mean_q_error(shard_id)
            if math.isfinite(value):
                out[shard_id] = value
        return out

    def reset(self, shard_id: int) -> None:
        """Forget a shard's window (after its part was rebuilt)."""
        with self._lock:
            self._errors[shard_id].clear()

    def as_dict(self) -> dict:
        """JSON-safe snapshot for the ``STALENESS`` verb."""
        with self._lock:
            shards = {
                str(shard_id): {
                    "observations": len(window),
                    "recorded_total": self._recorded[shard_id],
                    "mean_q_error": (
                        sum(window) / len(window)
                        if len(window) >= self.min_observations
                        else None
                    ),
                }
                for shard_id, window in enumerate(self._errors)
            }
        return {
            "window": self.window,
            "min_observations": self.min_observations,
            "shards": shards,
        }


def _shard_ranges(router: Any) -> list[tuple[int, int]]:
    return [(shard.offset, shard.end) for shard in router.plan]


def probe_shard_errors(
    router: Any,
    exact: InvertedIndex,
    entries: Iterable[WorkloadEntry],
    tracker: ShardStalenessTracker,
    max_queries: int = 64,
) -> int:
    """Attribute observed queries' error to individual shards.

    For each usable subset-predicate entry the global exact matching
    positions are split by shard ranges; every shard the router would fan
    the query to is asked for its own estimate and scored against its
    local truth.  Shards the skip rule excludes contribute an exact 0 and
    are not scored — no evidence, no trip.  Returns the number of
    (query, shard) observations recorded.

    Supported routers: ``ShardedCardinalityEstimator`` (estimates vs local
    counts) and ``ShardedSetIndex`` (positions vs local first positions,
    scored on the +1-shifted position axis).  Membership routers have no
    graded error to attribute and record nothing.
    """
    parts = getattr(router, "parts", None)
    if parts is None:
        return 0
    kind = type(router).__name__
    if kind not in ("ShardedCardinalityEstimator", "ShardedSetIndex"):
        return 0
    ranges = _shard_ranges(router)
    max_element_id = router.max_known_id()
    recorded = 0
    probed = 0
    for entry in entries:
        if probed >= max_queries:
            break
        canonical = entry.canonical
        if entry.spec != SUBSET.spec or not canonical:
            continue
        if canonical[0] < 0 or canonical[-1] > max_element_id:
            continue
        probed += 1
        positions = np.asarray(exact.matching_positions(canonical))
        for shard_id, part in enumerate(parts):
            if not router._shard_can_match(shard_id, canonical):
                continue
            start, end = ranges[shard_id]
            local = positions[(positions >= start) & (positions < end)]
            if kind == "ShardedCardinalityEstimator":
                truth = float(len(local))
                estimate = float(part.estimate_many([canonical])[0])
                value = float(q_error([estimate], [truth])[0])
            else:
                # Index parts answer local-first-position; score on the
                # +1-shifted axis so position 0 is not floored away.
                truth_first = float(local[0] - start) if len(local) else None
                found = part.lookup_many([canonical])[0]
                if truth_first is None and found is None:
                    value = 1.0
                elif truth_first is None or found is None:
                    # Found where nothing exists (or missed an existing
                    # position): maximal local disagreement.
                    value = float(end - start) + 1.0
                else:
                    value = float(
                        q_error([float(found) + 1.0], [truth_first + 1.0])[0]
                    )
            tracker.record(shard_id, value)
            recorded += 1
    return recorded
