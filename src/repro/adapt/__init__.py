"""Workload-adaptive training and drift-aware targeted refresh.

The feedback loop ROADMAP item 5 asks for, in four pieces:

* :class:`WorkloadLog` — bounded, thread-safe record of the served query
  stream (frequencies + sampled observed q-error);
* :func:`sample_from_workload` — frequency-weighted refresh training sets
  consumed through :func:`repro.core.hybrid.guided_fit`'s sample-weight
  path;
* :class:`ShardStalenessTracker` / :func:`probe_shard_errors` —
  Algorithm 2's local error bounds applied to staleness: observed error
  bucketed by shard offsets;
* :class:`AdaptiveRefresher` — rebuilds *only* tripped shards
  (:func:`workload_shard_rebuilder`) and hot-swaps them individually.
"""

from .refresher import (
    AdaptiveRefresher,
    workload_rebuilder,
    workload_shard_rebuilder,
)
from .sampler import sample_from_workload
from .tracker import ShardStalenessTracker, probe_shard_errors
from .workload import WorkloadEntry, WorkloadLog

__all__ = [
    "AdaptiveRefresher",
    "ShardStalenessTracker",
    "WorkloadEntry",
    "WorkloadLog",
    "probe_shard_errors",
    "sample_from_workload",
    "workload_rebuilder",
    "workload_shard_rebuilder",
]
