"""Staleness policy: when does a live structure need a refresh?

The paper gives the retraining trigger only qualitatively ("when accuracy
deteriorates", §7.2); serving needs concrete, observable thresholds.
:class:`StalenessPolicy` trips on any of three signals, each mirroring a
way the hybrid design degrades:

* **delta count** — mutations recorded since the last refresh (the
  auxiliary structure absorbing §6's updates one by one);
* **auxiliary fraction** — how much of the structure's answer mass now
  comes from the exact override layers instead of the model (§6's
  degenerate worst case is a fraction of 1.0);
* **probe q-error** — observed estimation drift measured by an optional
  probe workload (Algorithm 2's error bounds are computed at build time;
  drift past them means the recorded bounds no longer describe the model);
* **local q-error** — the same drift signal *bucketed by shard offsets*
  (Algorithm 2's local bounds applied to the observed workload): each
  shard of a ``Sharded*`` router gets its own observed mean q-error, and
  the per-shard reasons (``local_q_error:shard3``) let the refresher
  retrain only the shards that actually degraded.

``evaluate`` returns the *reasons* that tripped, so refreshes are
attributable in metrics and trace spans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "StalenessPolicy",
    "StalenessState",
    "aux_fraction_of",
    "tripped_shards",
]

_LOCAL_REASON_PREFIX = "local_q_error:shard"


@dataclass
class StalenessState:
    """One point-in-time staleness observation fed to the policy."""

    pending_deltas: int = 0
    aux_fraction: float = 0.0
    probe_q_error: float = field(default=math.nan)
    # Per-shard observed mean q-error (Algorithm 2's local bounds bucketed
    # by shard offsets); None when the structure is unsharded or no
    # per-shard observations exist yet.
    shard_q_errors: dict[int, float] | None = None

    def as_dict(self) -> dict:
        return {
            "pending_deltas": self.pending_deltas,
            "aux_fraction": self.aux_fraction,
            # NaN (no probe) serializes as null so the dict is JSON-safe.
            "probe_q_error": (
                self.probe_q_error if math.isfinite(self.probe_q_error) else None
            ),
            "shard_q_errors": (
                {
                    str(shard_id): (value if math.isfinite(value) else None)
                    for shard_id, value in sorted(self.shard_q_errors.items())
                }
                if self.shard_q_errors is not None
                else None
            ),
        }


@dataclass
class StalenessPolicy:
    """Refresh thresholds; ``None`` disables a signal entirely.

    ``min_interval_s`` is a refresh rate limiter enforced by the
    refresher, not by :meth:`evaluate` — a policy evaluation is pure.
    """

    max_deltas: int | None = 1000
    max_aux_fraction: float | None = 0.25
    max_probe_q_error: float | None = None
    max_local_q_error: float | None = None
    min_interval_s: float = 0.0

    def __post_init__(self):
        if self.max_deltas is not None and self.max_deltas < 1:
            raise ValueError("max_deltas must be >= 1 (or None)")
        if self.max_aux_fraction is not None and not 0.0 < self.max_aux_fraction:
            raise ValueError("max_aux_fraction must be positive (or None)")
        if self.max_probe_q_error is not None and self.max_probe_q_error < 1.0:
            raise ValueError("max_probe_q_error must be >= 1.0 (or None)")
        if self.max_local_q_error is not None and self.max_local_q_error < 1.0:
            raise ValueError("max_local_q_error must be >= 1.0 (or None)")
        if self.min_interval_s < 0.0:
            raise ValueError("min_interval_s cannot be negative")

    def evaluate(self, state: StalenessState) -> list[str]:
        """The reasons ``state`` warrants a refresh (empty: it does not)."""
        reasons: list[str] = []
        if self.max_deltas is not None and state.pending_deltas >= self.max_deltas:
            reasons.append("delta_count")
        if (
            self.max_aux_fraction is not None
            and state.aux_fraction >= self.max_aux_fraction
        ):
            reasons.append("aux_fraction")
        if (
            self.max_probe_q_error is not None
            and math.isfinite(state.probe_q_error)
            and state.probe_q_error > self.max_probe_q_error
        ):
            reasons.append("q_error_drift")
        if self.max_local_q_error is not None and state.shard_q_errors:
            for shard_id in sorted(state.shard_q_errors):
                value = state.shard_q_errors[shard_id]
                if math.isfinite(value) and value > self.max_local_q_error:
                    reasons.append(f"{_LOCAL_REASON_PREFIX}{shard_id}")
        return reasons

    def as_dict(self) -> dict:
        return {
            "max_deltas": self.max_deltas,
            "max_aux_fraction": self.max_aux_fraction,
            "max_probe_q_error": self.max_probe_q_error,
            "max_local_q_error": self.max_local_q_error,
            "min_interval_s": self.min_interval_s,
        }


def tripped_shards(reasons: Iterable[str]) -> list[int]:
    """Shard ids named by per-shard ``local_q_error:shard<i>`` reasons.

    Returns a sorted list; reasons that are not per-shard are ignored.
    The inverse of the reason formatting in :meth:`StalenessPolicy.evaluate`,
    used by the targeted-refresh path to decide *which* parts to retrain.
    """
    shard_ids: set[int] = set()
    for reason in reasons:
        if reason.startswith(_LOCAL_REASON_PREFIX):
            suffix = reason[len(_LOCAL_REASON_PREFIX):]
            try:
                shard_ids.add(int(suffix))
            except ValueError:
                continue
    return sorted(shard_ids)


def aux_fraction_of(structure: Any) -> float:
    """How much of ``structure``'s answers come from exact override layers.

    * unsharded index — its own ``auxiliary_fraction`` (aux entries over
      trained subsets);
    * unsharded estimator — auxiliary entries over trained subsets;
    * sharded routers — router-level override entries over the collection
      size, plus the maximum per-part fraction (a single saturated shard
      should trip a per-shard policy even when the router override layer
      is small);
    * anything without an enumerable auxiliary (the Bloom filters, whose
      insert filters are not enumerable) — 0.0; staleness for those is
      driven by the delta count.
    """
    parts = getattr(structure, "parts", None)
    if parts is not None:
        plan = getattr(structure, "plan", None)
        num_sets = getattr(plan, "num_sets", 0) or 1
        router_aux = getattr(structure, "auxiliary", None)
        fraction = len(router_aux) / num_sets if router_aux is not None else 0.0
        part_fractions = [aux_fraction_of(part) for part in parts]
        return max([fraction] + part_fractions)
    # Guarded facades: measure the wrapped structure.
    for attr in ("estimator", "index", "filter"):
        inner = getattr(structure, attr, None)
        if inner is not None and inner is not structure:
            return aux_fraction_of(inner)
    probe = getattr(structure, "auxiliary_fraction", None)
    if probe is not None:
        return float(probe)
    auxiliary = getattr(structure, "auxiliary", None)
    if auxiliary is not None:
        report = getattr(structure, "report", None)
        trained = getattr(report, "num_training_subsets", 0) or 1
        return len(auxiliary) / trained
    return 0.0
