"""Background refresh: retrain a drifting structure and hot-swap it live.

The missing path from "the auxiliary structure is growing" (paper §6) back
to a freshly trained model.  :class:`BackgroundRefresher` watches one
:class:`~repro.serve.SetServer` through a :class:`DeltaBuffer` and a
:class:`StalenessPolicy`; when the policy trips it

1. retrains the served structure **off the serving thread** — per shard
   via :class:`~repro.shard.ShardedBuilder` when the structure is sharded
   (:func:`default_rebuilder`), or through any caller-provided ``rebuild``
   callable (warm starts, different configs, remote training);
2. **replays** every recorded post-build mutation onto the fresh
   structure (values read from the old structure's auxiliary layers, so
   a retrain never forgets an absorbed update — the Bloom
   no-false-negative guarantee survives the swap);
3. **rewraps** the guarded facade around the new inner structure (reusing
   the paired exact index — the collection itself never changes);
4. publishes through the server's existing :class:`SnapshotHolder` hot
   swap, which atomically installs the new generation and clears the
   query cache.

Every step is observable: ``repro_maintain_*`` metrics on the server's
registry, a ``refresh`` span (with its trip reasons) in the server's
tracer, and :meth:`status` for the ``REFRESH`` protocol verb /
``repro refresh-status``.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Callable

from ..core.cardinality import LearnedCardinalityEstimator
from ..core.config import ModelConfig
from ..core.index import LearnedSetIndex
from ..core.membership import LearnedBloomFilter
from ..core.training import TrainConfig
from ..reliability import (
    GuardedBloomFilter,
    GuardedCardinalityEstimator,
    GuardedSetIndex,
)
from .delta import DeltaBuffer
from .policy import StalenessPolicy, StalenessState, aux_fraction_of

__all__ = [
    "BackgroundRefresher",
    "RefreshError",
    "default_rebuilder",
    "mutate_through",
    "replay_deltas",
    "rewrap_like",
    "unwrap_structure",
]


class RefreshError(RuntimeError):
    """A refresh attempt failed; the old generation keeps serving."""


def unwrap_structure(structure: Any) -> Any:
    """The raw (possibly sharded) structure behind a guarded facade."""
    if isinstance(structure, GuardedCardinalityEstimator):
        return structure.estimator
    if isinstance(structure, GuardedSetIndex):
        return structure.index
    if isinstance(structure, GuardedBloomFilter):
        return structure.filter
    return structure


def rewrap_like(old: Any, new_inner: Any) -> Any:
    """Wrap ``new_inner`` the way ``old`` was wrapped (or return it raw).

    The paired exact index and query-size ceiling are reused: refreshes
    retrain the *model*, the collection underneath never changes.
    """
    if isinstance(old, GuardedCardinalityEstimator):
        return GuardedCardinalityEstimator(new_inner, old.exact, old.max_query_size)
    if isinstance(old, GuardedSetIndex):
        return GuardedSetIndex(new_inner, old.exact, old.max_query_size)
    if isinstance(old, GuardedBloomFilter):
        return GuardedBloomFilter(new_inner, old.exact, old.max_query_size)
    return new_inner


def replay_deltas(
    kind: str, source: Any, target: Any, canonicals: list[tuple[int, ...]]
) -> int:
    """Re-apply recorded mutations onto a freshly trained structure.

    Values are read from ``source``'s auxiliary override layer (membership
    inserts carry no value — the canonical itself is the payload).  A
    canonical absent from the source auxiliary is skipped: either the
    structure absorbed it without storing (an index update inside its
    error window) or the mutation already landed on ``target`` directly.
    Returns the number of mutations applied.
    """
    applied = 0
    for canonical in canonicals:
        if kind == "bloom":
            target.insert(canonical)
            applied += 1
            continue
        auxiliary = getattr(source, "auxiliary", None)
        value = auxiliary.get(canonical) if auxiliary is not None else None
        if value is None:
            continue
        if kind == "cardinality":
            target.record_update(canonical, value)
        else:
            target.insert_update(canonical, value)
        applied += 1
    return applied


def mutate_through(server: Any, mutator: Callable[[Any], Any]) -> Any:
    """Apply ``mutator(inner_structure)`` so it survives a concurrent swap.

    A writer that reads ``server.structure`` and then mutates it races the
    hot swap: the mutation can land on a generation that just stopped
    serving, after the refresher's replay already read its state — the
    update would strand on the dead structure until the *next* refresh.
    This helper re-checks the served structure after mutating and
    re-applies on the new generation when a swap interleaved.  Mutations
    (auxiliary overrides, membership inserts) are idempotent, so applying
    to both generations is safe; the last application always targets the
    structure that is actually serving.
    """
    for _ in range(8):
        inner = unwrap_structure(server.structure)
        result = mutator(inner)
        if unwrap_structure(server.structure) is inner:
            return result
    raise RefreshError("mutation kept racing hot swaps; giving up after 8 tries")


_ROUTER_TASKS = {
    "ShardedCardinalityEstimator": "cardinality",
    "ShardedSetIndex": "index",
    "ShardedBloomFilter": "bloom",
}

_UNSHARDED_TASKS = {
    LearnedCardinalityEstimator: "cardinality",
    LearnedSetIndex: "index",
    LearnedBloomFilter: "bloom",
}


def default_rebuilder(
    structure: Any,
    *,
    collection=None,
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    removal=None,
    max_subset_size: int | None = 4,
    max_training_samples: int | None = None,
    num_negative_samples: int | None = None,
    workers: int = 1,
    base_seed: int = 1,
) -> Callable[[Any], Any]:
    """A ``rebuild`` callable that retrains ``structure``'s inner model.

    * sharded routers retrain per shard through
      :class:`~repro.shard.ShardedBuilder` over the router's existing
      plan (guarded parts stay guarded);
    * unsharded structures retrain through their ``build`` classmethods —
      the index carries its collection, the estimator and Bloom filter
      need ``collection`` passed here.

    Each rebuild uses seed ``base_seed + generation`` so successive
    refreshes explore fresh initializations rather than re-deriving the
    model that just drifted.
    """
    inner = unwrap_structure(structure)
    if not hasattr(inner, "parts") and getattr(inner, "collection", None) is None:
        if collection is None:
            raise ValueError(
                f"cannot rebuild a {type(inner).__name__} without its "
                "training collection: pass collection=..."
            )
    model_config = model_config or ModelConfig()
    train_config = train_config or TrainConfig(epochs=6)
    state = {"generation": 0}

    def rebuild(current_inner: Any) -> Any:
        state["generation"] += 1
        seed = base_seed + state["generation"]
        parts = getattr(current_inner, "parts", None)
        if parts is not None:
            from ..shard import ShardedBuilder

            task = _ROUTER_TASKS.get(type(current_inner).__name__)
            if task is None:
                raise RefreshError(
                    f"unknown sharded router {type(current_inner).__name__}"
                )
            guarded_parts = any(
                isinstance(
                    part,
                    (GuardedCardinalityEstimator, GuardedSetIndex, GuardedBloomFilter),
                )
                for part in parts
            )
            builder = ShardedBuilder(
                current_inner.plan,
                workers=workers,
                base_seed=seed,
                guarded=guarded_parts,
                model_config=model_config,
                train_config=train_config,
                removal=removal,
                max_subset_size=max_subset_size,
                max_training_samples=max_training_samples,
                num_negative_samples=num_negative_samples,
            )
            return builder.build(task)
        task = _UNSHARDED_TASKS.get(type(current_inner))
        if task is None:
            raise RefreshError(
                f"cannot rebuild a {type(current_inner).__name__}; pass a "
                "custom rebuild callable"
            )
        coll = getattr(current_inner, "collection", None)
        if coll is None:
            coll = collection
        seeded_model = replace(model_config, seed=seed)
        seeded_train = replace(train_config, seed=seed)
        if task == "cardinality":
            return LearnedCardinalityEstimator.build(
                coll,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                max_subset_size=max_subset_size,
                max_training_samples=max_training_samples,
            )
        if task == "index":
            return LearnedSetIndex.build(
                coll,
                model_config=seeded_model,
                train_config=seeded_train,
                removal=removal,
                max_subset_size=max_subset_size,
                max_training_samples=max_training_samples,
            )
        return LearnedBloomFilter.build(
            coll,
            model_config=seeded_model,
            train_config=replace(seeded_train, loss="bce"),
            max_subset_size=max_subset_size,
            max_positive_samples=max_training_samples,
            num_negative_samples=num_negative_samples,
        )

    return rebuild


class BackgroundRefresher:
    """Watches one server's staleness and hot-swaps retrained structures.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.SetServer` to maintain.  The refresher
        registers itself as ``server.maintainer`` (served by the
        ``REFRESH`` protocol verb) and its metrics on the server's
        registry.
    rebuild:
        ``rebuild(inner_structure) -> new_inner_structure``; use
        :func:`default_rebuilder` for the standard retrain paths.
    policy / delta:
        Trip thresholds and the mutation log (fresh defaults when
        omitted).  The delta buffer is attached to the served structure's
        inner (unwrapped) structure immediately.
    interval_s:
        Background check period for :meth:`start`.
    probe:
        Optional ``() -> float`` returning an observed mean q-error for
        the drift signal (e.g. comparing served estimates against an
        exact :class:`InvertedIndex` over a probe workload).
    backoff_base_s / backoff_max_s:
        Exponential backoff after a failed refresh: the ``n``-th
        consecutive failure suspends policy-triggered refreshes for
        ``min(backoff_base_s * 2**(n-1), backoff_max_s)`` seconds.
        Without this, a persistently failing rebuild (bad training data,
        injected faults, a dead worker pool) re-triggers on every policy
        evaluation and burns a CPU retraining into the same wall while
        the old generation serves just fine.
    breaker_failures / breaker_cooldown_s:
        Circuit breaker over the backoff: after ``breaker_failures``
        consecutive failures the breaker *opens* and refreshes stay
        suspended for at least ``breaker_cooldown_s``; the first attempt
        after the cooldown runs *half-open* (one probe refresh) — success
        closes the breaker, failure re-opens it for another cooldown.
        Manual :meth:`refresh_now` calls bypass both mechanisms.
    """

    def __init__(
        self,
        server: Any,
        rebuild: Callable[[Any], Any],
        policy: StalenessPolicy | None = None,
        delta: DeltaBuffer | None = None,
        interval_s: float = 1.0,
        probe: Callable[[], float] | None = None,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 60.0,
        breaker_failures: int = 5,
        breaker_cooldown_s: float = 60.0,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if backoff_base_s <= 0 or backoff_max_s <= 0:
            raise ValueError("backoff durations must be positive")
        if breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s cannot be negative")
        self.server = server
        self.rebuild = rebuild
        self.policy = policy or StalenessPolicy()
        self.delta = delta or DeltaBuffer()
        self.interval_s = float(interval_s)
        self.probe = probe
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.breaker_failures = int(breaker_failures)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self._consecutive_failures = 0
        self._retry_at = 0.0  # monotonic instant policy refreshes resume
        self._breaker_tripped = False
        self.backoff_skips = 0
        self._refresh_lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_refresh_mark = 0
        self._last_refresh_at: float | None = None
        self._last_refresh_duration = 0.0
        self._last_refreeze_seconds = 0.0
        self._last_reasons: list[str] = []
        self._last_error: str | None = None
        #: Rolling window of failure messages (``last_error`` clears on the
        #: next success; post-mortems need the history).
        self.recent_errors: deque[str] = deque(maxlen=8)
        self._last_probe = math.nan
        self._last_replay_truncated = False
        self.checks = 0
        self.refreshes = 0
        self.failures = 0
        self.replayed = 0
        self.delta.attach(unwrap_structure(server.structure))
        server.maintainer = self
        self._register_metrics()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "BackgroundRefresher":
        """Start the background check loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-maintain-refresher", daemon=True
        )
        self._thread.start()
        return self

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the loop; an in-flight refresh finishes first."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "BackgroundRefresher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.check_now()
            except RefreshError:
                pass  # already counted and recorded by refresh_now
            except Exception as exc:
                # Check failures must never kill the watchdog.
                self._record_failure(exc)

    def _record_failure(self, exc: BaseException) -> None:
        self.failures += 1
        self._last_error = f"{type(exc).__name__}: {exc}"
        self.recent_errors.append(self._last_error)
        self._metric_failures.inc()

    # -- staleness evaluation --------------------------------------------------

    def collect_state(self) -> StalenessState:
        """One staleness observation over the currently served structure."""
        if self.probe is not None:
            try:
                self._last_probe = float(self.probe())
            except Exception:
                self._last_probe = math.nan
        return StalenessState(
            pending_deltas=self.delta.pending_since(self._last_refresh_mark),
            aux_fraction=aux_fraction_of(self.server.structure),
            probe_q_error=self._last_probe,
        )

    def check_now(self) -> bool:
        """Evaluate the policy once; refresh if it trips.  True on refresh.

        A tripped policy does not refresh while failure backoff is in
        effect (see ``backoff_base_s``): the skip is counted instead, and
        the old generation keeps serving until the backoff window — or the
        open breaker's cooldown — expires.
        """
        self.checks += 1
        self._metric_checks.inc()
        reasons = self.policy.evaluate(self.collect_state())
        if not reasons:
            return False
        if (
            self._last_refresh_at is not None
            and time.monotonic() - self._last_refresh_at < self.policy.min_interval_s
        ):
            return False
        if time.monotonic() < self._retry_at:
            self.backoff_skips += 1
            self._metric_backoff_skips.inc()
            return False
        self.refresh_now(reasons)
        return True

    # -- failure backoff / circuit breaker ------------------------------------

    @property
    def breaker_state(self) -> str:
        """``closed`` (healthy), ``open`` (cooling down after repeated
        failures), or ``half-open`` (cooldown over, next attempt probes)."""
        if not self._breaker_tripped:
            return "closed"
        return "open" if time.monotonic() < self._retry_at else "half-open"

    def backoff_remaining_s(self) -> float:
        """Seconds until policy-triggered refreshes resume (0 when none)."""
        return max(self._retry_at - time.monotonic(), 0.0)

    def _record_refresh_failure(self) -> None:
        self._consecutive_failures += 1
        delay = min(
            self.backoff_base_s * 2.0 ** (self._consecutive_failures - 1),
            self.backoff_max_s,
        )
        if self._consecutive_failures >= self.breaker_failures:
            self._breaker_tripped = True
            delay = max(delay, self.breaker_cooldown_s)
        self._retry_at = time.monotonic() + delay

    def _record_refresh_success(self) -> None:
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self._breaker_tripped = False

    # -- the refresh itself ----------------------------------------------------

    def refresh_now(self, reasons: list[str] | tuple[str, ...] = ("manual",)):
        """Retrain, replay deltas, rewrap, and hot-swap; returns the snapshot.

        Raises :class:`RefreshError` on failure — the old generation keeps
        serving and the failure is counted and recorded in :meth:`status`.
        """
        reasons = list(reasons)
        with self._refresh_lock:
            started = time.monotonic()
            tracer = getattr(self.server, "tracer", None)
            span_ctx = (
                tracer.span("refresh", kind=self.server.kind,
                            reasons=",".join(reasons))
                if tracer is not None
                else _null_span()
            )
            try:
                with span_ctx as span:
                    snapshot = self._refresh(span)
            except Exception as exc:
                self._record_failure(exc)
                self._record_refresh_failure()
                raise RefreshError(
                    f"refresh failed ({', '.join(reasons)}): {exc}"
                ) from exc
            self._last_refresh_duration = time.monotonic() - started
            self._last_refresh_at = time.monotonic()
            self._last_reasons = reasons
            self._last_error = None
            self._record_refresh_success()
            self.refreshes += 1
            self._metric_refreshes.inc()
            return snapshot

    def _refresh(self, span: dict):
        old = self.server.structure
        old_inner = unwrap_structure(old)
        pre_mark = self.delta.mark()
        new_inner = self.rebuild(old_inner)
        return self._publish(old, old_inner, new_inner, pre_mark, span)

    def _publish(self, old: Any, old_inner: Any, new_inner: Any,
                 pre_mark: int, span: dict):
        """Refreeze, rewrap, replay, and hot-swap a rebuilt inner structure.

        Shared by the full-rebuild path above and the targeted per-shard
        path (:class:`repro.adapt.AdaptiveRefresher`), which assembles
        ``new_inner`` from a mix of fresh and reused shard parts.
        """
        self._refreeze(old_inner, new_inner, span)
        new = rewrap_like(old, new_inner)
        # Replay the full mutation history: a rebuild retrains from the
        # collection, which never absorbed the post-build mutations — they
        # live only in the old structure's auxiliary layers.
        canonicals, truncated = self.delta.events_since(0)
        applied = replay_deltas(self.server.kind, old_inner, new_inner, canonicals)
        # Attach before the swap so no mutation window goes unrecorded.
        self.delta.attach(new_inner)
        snapshot = self.server.swap(new)
        # Mutations that raced the swap landed on the old structure after
        # the bulk replay read its state; replay that tail onto the new one.
        stragglers, late_truncated = self.delta.events_since(pre_mark)
        applied += replay_deltas(self.server.kind, old_inner, new_inner, stragglers)
        self.delta.detach(old_inner)
        self.replayed += applied
        self._metric_replayed.inc(applied)
        self._last_replay_truncated = truncated or late_truncated
        self._last_refresh_mark = self.delta.mark()
        span["attrs"]["replayed"] = applied
        span["attrs"]["snapshot_version"] = snapshot.version
        span["attrs"]["replay_truncated"] = self._last_replay_truncated
        return snapshot

    def _refreeze(self, old_inner: Any, new_inner: Any, span: dict) -> None:
        """Carry frozen inference plans onto the retrained generation.

        Re-freezing runs inside its own traced span and records its cost in
        ``repro_maintain_refreeze_seconds``, so freeze time after a retrain
        is visible and never silently extends the swap window.  A freeze
        failure is recorded but does not fail the refresh: the new
        generation then serves through the autograd path (the transparent
        fallback) instead of staying unpublished.
        """
        from ..infer import refreeze_like

        started = time.monotonic()
        try:
            tracer = getattr(self.server, "tracer", None)
            ctx = (
                tracer.span("refreeze", kind=self.server.kind)
                if tracer is not None
                else _null_span()
            )
            with ctx:
                report = refreeze_like(old_inner, new_inner)
        except Exception as exc:
            self._last_error = f"refreeze failed: {type(exc).__name__}: {exc}"
            self.recent_errors.append(self._last_error)
            span["attrs"]["refrozen"] = False
        else:
            span["attrs"]["refrozen"] = report is not None
        finally:
            self._last_refreeze_seconds = time.monotonic() - started

    # -- reporting --------------------------------------------------------------

    def _register_metrics(self) -> None:
        registry = self.server.registry
        self._metric_checks = registry.counter(
            "repro_maintain_checks_total", "Staleness-policy evaluations"
        )
        self._metric_refreshes = registry.counter(
            "repro_maintain_refreshes_total",
            "Background refreshes published via hot swap",
        )
        self._metric_failures = registry.counter(
            "repro_maintain_refresh_failures_total",
            "Refresh attempts that failed (old generation kept serving)",
        )
        self._metric_replayed = registry.counter(
            "repro_maintain_replayed_deltas_total",
            "Recorded mutations re-applied onto refreshed structures",
        )
        self._metric_backoff_skips = registry.counter(
            "repro_maintain_backoff_skips_total",
            "Tripped policy evaluations suppressed by failure backoff",
        )
        registry.gauge_function(
            "repro_maintain_refresh_backoff",
            "Seconds until policy-triggered refreshes resume (0 when "
            "no backoff is in effect)",
            self.backoff_remaining_s,
        )
        registry.gauge_function(
            "repro_maintain_consecutive_refresh_failures",
            "Refresh failures since the last success",
            lambda: float(self._consecutive_failures),
        )
        registry.gauge_function(
            "repro_maintain_breaker_open",
            "1 while the refresh circuit breaker is open or half-open",
            lambda: 1.0 if self._breaker_tripped else 0.0,
        )
        registry.gauge_function(
            "repro_maintain_deltas_pending",
            "Mutations recorded since the last refresh",
            lambda: self.delta.pending_since(self._last_refresh_mark),
        )
        registry.gauge_function(
            "repro_maintain_aux_fraction",
            "Fraction of the served structure's answers coming from exact "
            "override layers",
            lambda: aux_fraction_of(self.server.structure),
        )
        registry.gauge_function(
            "repro_maintain_probe_q_error",
            "Last observed probe mean q-error (NaN without a probe)",
            lambda: self._last_probe,
        )
        registry.gauge_function(
            "repro_maintain_last_refresh_duration_seconds",
            "Wall-clock duration of the last successful refresh",
            lambda: self._last_refresh_duration,
        )
        registry.gauge_function(
            "repro_maintain_refreeze_seconds",
            "Wall-clock cost of re-freezing inference plans after the last "
            "rebuild (0 when the structure carries no plan)",
            lambda: self._last_refreeze_seconds,
        )
        registry.gauge_function(
            "repro_maintain_running",
            "1 while the background check loop is alive",
            lambda: 1.0 if self.running else 0.0,
        )

    def status(self) -> dict:
        """Full maintainer state (the ``REFRESH`` verb's JSON body)."""
        return {
            "auto_refresh": True,
            "running": self.running,
            "kind": self.server.kind,
            "interval_s": self.interval_s,
            "policy": self.policy.as_dict(),
            "state": self.collect_state().as_dict(),
            "checks": self.checks,
            "refreshes": self.refreshes,
            "failures": self.failures,
            "replayed_deltas": self.replayed,
            "last_refresh_duration_s": self._last_refresh_duration,
            "last_refreeze_s": self._last_refreeze_seconds,
            "last_reasons": list(self._last_reasons),
            "last_error": self._last_error,
            "recent_errors": list(self.recent_errors),
            "consecutive_failures": self._consecutive_failures,
            "backoff_remaining_s": self.backoff_remaining_s(),
            "backoff_skips": self.backoff_skips,
            "breaker_state": self.breaker_state,
            "last_replay_truncated": self._last_replay_truncated,
            "delta": self.delta.as_dict(),
            "snapshot_version": self.server.snapshot.version,
        }


class _null_span:
    """Stand-in context manager when the server has no tracer."""

    def __enter__(self) -> dict:
        return {"attrs": {}}

    def __exit__(self, *exc_info) -> None:
        return None
