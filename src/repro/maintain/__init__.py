"""Incremental maintenance: delta tracking, staleness, background refresh.

The paper's hybrid structures absorb post-build inserts and updates into
their auxiliary exact layers (§6); this package closes the loop back to a
freshly trained model.  :class:`DeltaBuffer` records every absorbed
mutation through the core :class:`~repro.core.UpdateNotifier` hooks,
:class:`StalenessPolicy` decides when the accumulated drift warrants a
retrain, and :class:`BackgroundRefresher` retrains off the serving
thread, replays the recorded deltas onto the fresh structure, and
publishes it through the serving stack's hot swap.
"""

from .delta import DeltaBuffer, DeltaEvent
from .policy import (
    StalenessPolicy,
    StalenessState,
    aux_fraction_of,
    tripped_shards,
)
from .refresher import (
    BackgroundRefresher,
    RefreshError,
    default_rebuilder,
    mutate_through,
    replay_deltas,
    rewrap_like,
    unwrap_structure,
)

__all__ = [
    "BackgroundRefresher",
    "DeltaBuffer",
    "DeltaEvent",
    "RefreshError",
    "StalenessPolicy",
    "StalenessState",
    "aux_fraction_of",
    "default_rebuilder",
    "mutate_through",
    "replay_deltas",
    "rewrap_like",
    "tripped_shards",
    "unwrap_structure",
]
