"""Delta buffer: the record of post-build mutations a structure absorbed.

The paper's update strategy (§6, §7.2) sends every insert/update into the
auxiliary exact structure and defers retraining.  That keeps answers
correct but silently degrades the learned structure towards a plain
HashMap; the serving stack needs to *see* the degradation to repair it.
:class:`DeltaBuffer` subscribes to a structure's
:class:`~repro.core.UpdateNotifier` hooks and records every mutation —
sequence-numbered, bounded, thread-safe — so the
:class:`~repro.maintain.StalenessPolicy` can count drift and the
:class:`~repro.maintain.BackgroundRefresher` can replay the mutations that
raced a retrain onto the freshly trained structure before the hot swap.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["DeltaBuffer", "DeltaEvent"]


class DeltaEvent:
    """One recorded mutation: its sequence number and canonical subset."""

    __slots__ = ("seq", "canonical")

    def __init__(self, seq: int, canonical: tuple[int, ...]):
        self.seq = seq
        self.canonical = canonical

    def __repr__(self) -> str:
        return f"DeltaEvent(seq={self.seq}, canonical={self.canonical})"


class DeltaBuffer:
    """Bounded, thread-safe log of post-build structure mutations.

    Parameters
    ----------
    max_events:
        Ring capacity.  When it overflows the oldest events are dropped
        and counted; :meth:`events_since` then reports the replay window
        as truncated so a refresher knows its replay may be incomplete
        (the full rebuild still re-derives state from the old structure's
        auxiliary layers, so truncation costs fidelity only for events the
        old structure itself no longer remembers).
    """

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._events: deque[DeltaEvent] = deque()
        self._seq = 0
        self._dropped = 0
        self._attached: list[Any] = []

    # -- subscription ---------------------------------------------------------

    def attach(self, structure: Any) -> None:
        """Subscribe to ``structure``'s update notifications.

        ``structure`` must expose ``add_update_listener`` (every learned
        structure and sharded router does via :class:`UpdateNotifier`).
        """
        structure.add_update_listener(self.record)
        with self._lock:
            self._attached.append(structure)

    def detach(self, structure: Any) -> None:
        """Unsubscribe from ``structure`` (no-op if not attached)."""
        try:
            structure.remove_update_listener(self.record)
        except (AttributeError, ValueError):
            pass
        with self._lock:
            try:
                self._attached.remove(structure)
            except ValueError:
                pass

    def detach_all(self) -> None:
        """Unsubscribe from every structure this buffer is attached to."""
        with self._lock:
            attached = list(self._attached)
        for structure in attached:
            self.detach(structure)

    # -- recording ------------------------------------------------------------

    def record(self, canonical: tuple[int, ...]) -> int:
        """Log one mutation; returns its sequence number.

        This is the :class:`UpdateNotifier` listener signature, so the
        buffer can be registered directly.
        """
        with self._lock:
            self._seq += 1
            self._events.append(DeltaEvent(self._seq, tuple(canonical)))
            while len(self._events) > self.max_events:
                self._events.popleft()
                self._dropped += 1
            return self._seq

    # -- reading --------------------------------------------------------------

    def mark(self) -> int:
        """The current sequence number (a replay watermark)."""
        with self._lock:
            return self._seq

    def pending_since(self, mark: int) -> int:
        """How many mutations were recorded after ``mark``."""
        with self._lock:
            return max(self._seq - int(mark), 0)

    def events_since(self, mark: int) -> tuple[list[tuple[int, ...]], bool]:
        """Canonicals recorded after ``mark`` plus a truncation flag.

        The canonicals are de-duplicated preserving first-occurrence order
        (replaying a mutation twice is idempotent but pointless).  The
        second element is ``True`` when ring overflow dropped events inside
        the requested window.
        """
        with self._lock:
            events = [e for e in self._events if e.seq > mark]
            oldest_retained = self._events[0].seq if self._events else self._seq + 1
            truncated = self._dropped > 0 and oldest_retained > int(mark) + 1
        seen: set[tuple[int, ...]] = set()
        canonicals: list[tuple[int, ...]] = []
        for event in events:
            if event.canonical not in seen:
                seen.add(event.canonical)
                canonicals.append(event.canonical)
        return canonicals, truncated

    @property
    def total_events(self) -> int:
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "total_events": self._seq,
                "buffered": len(self._events),
                "dropped": self._dropped,
                "max_events": self.max_events,
                "attached": len(self._attached),
            }
