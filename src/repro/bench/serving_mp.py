"""Multi-process serving benchmark: pool vs threaded server vs serial loop.

Drives the same workload through three tiers — the serial single-query
loop (the paper's §8 latency methodology), the threaded
:class:`~repro.serve.server.SetServer`, and the multi-process
:class:`~repro.serve.pool.WorkerPool` — and reports queries-per-second
for each, elementwise parity mismatch counts against the serial answers,
and the pool's worker/registry telemetry.

Honesty matters more than headline numbers here: the report records
``cpu_count`` and a ``caveat`` string, because on a 1-core container the
pool *cannot* beat the threaded tier on compute-bound traffic — every
process time-slices the same core and the pool adds pickle + pipe hops
per batch.  The pool's win on such a host is isolation (a SIGKILLed
worker does not take the server down) and the shm publication path
(weights are shared pages, not N copies), which the report captures via
``rss_note`` fields rather than by inflating QPS.  ``min_speedup``
defaults to 0.0 for exactly this reason; multi-core hosts can ratchet it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Sequence

from ..serve import BatchPolicy, SetServer, WorkerPool, detect_kind
from .reporting import results_dir
from .serving import _agrees, _single_query_fn

__all__ = [
    "run_mp_serving_benchmark",
    "write_mp_serving_report",
]


def _drive_backend(
    backend: Any, queries: Sequence[tuple[int, ...]], threads: int
) -> tuple[list[Any], float]:
    """Open-loop load generation against anything with ``submit``."""
    results: list[Any] = [None] * len(queries)
    slices = [range(tid, len(queries), threads) for tid in range(threads)]

    def drive(rows) -> None:
        futures = [(row, backend.submit(queries[row])) for row in rows]
        for row, future in futures:
            try:
                results[row] = future.result(timeout=120.0)
            except Exception as exc:
                results[row] = exc

    workers = [
        threading.Thread(target=drive, args=(rows,), name=f"mp-loadgen-{i}")
        for i, rows in enumerate(slices)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return results, time.perf_counter() - started


def _mismatches(serial: Sequence[Any], served: Sequence[Any]) -> int:
    count = 0
    for a, b in zip(serial, served):
        if isinstance(b, Exception) or not _agrees(a, b):
            count += 1
    return count


def run_mp_serving_benchmark(
    structure,
    queries: Sequence[tuple[int, ...]],
    workers: int = 2,
    threads: int = 8,
    policy: BatchPolicy | None = None,
    cache_size: int = 4096,
    min_speedup: float = 0.0,
) -> dict[str, Any]:
    """Serial vs threaded-server vs worker-pool over one workload.

    ``min_speedup`` is the required pool-over-serial floor; the default
    0.0 only asserts the pool answers (CI runs on one core, where a
    throughput win is not physically available — see the module
    docstring).  Parity is always asserted: ``pool_mismatches`` counts
    elementwise disagreements with the serial answers and any mismatch
    fails the bench regardless of speed.
    """
    kind = detect_kind(structure)
    policy = policy or BatchPolicy()
    single = _single_query_fn(structure, kind)

    started = time.perf_counter()
    serial_results = [single(query) for query in queries]
    serial_seconds = time.perf_counter() - started
    serial_qps = len(queries) / serial_seconds if serial_seconds else float("inf")

    with SetServer(structure, policy=policy, cache_size=cache_size) as server:
        threaded_results, threaded_seconds = _drive_backend(
            server, queries, threads
        )
    threaded_qps = (
        len(queries) / threaded_seconds if threaded_seconds else float("inf")
    )

    with WorkerPool(
        structure, workers=workers, policy=policy, cache_size=cache_size
    ) as pool:
        pool_results, pool_seconds = _drive_backend(pool, queries, threads)
        pool_stats = pool.stats_dict()
    pool_qps = len(queries) / pool_seconds if pool_seconds else float("inf")

    cpu_count = os.cpu_count() or 1
    pool_speedup = pool_qps / serial_qps if serial_qps else float("inf")
    report = {
        "kind": kind,
        "num_queries": len(queries),
        "workers": workers,
        "threads": threads,
        "cpu_count": cpu_count,
        "max_batch_size": policy.max_batch_size,
        "max_wait_ms": policy.max_wait_ms,
        "cache_size": cache_size,
        "serial_seconds": serial_seconds,
        "threaded_seconds": threaded_seconds,
        "pool_seconds": pool_seconds,
        "serial_qps": serial_qps,
        "threaded_qps": threaded_qps,
        "pool_qps": pool_qps,
        "threaded_speedup": (
            threaded_qps / serial_qps if serial_qps else float("inf")
        ),
        "pool_speedup": pool_speedup,
        "threaded_mismatches": _mismatches(serial_results, threaded_results),
        "pool_mismatches": _mismatches(serial_results, pool_results),
        "min_speedup": min_speedup,
        "pool_stats": pool_stats,
        "caveat": (
            f"measured on {cpu_count} core(s): with fewer cores than "
            f"workers+1 the pool time-slices one CPU and adds IPC per "
            f"batch, so pool_qps understates multi-core throughput; the "
            f"pool's value on this host is crash isolation and shared "
            f"(not per-worker) plan pages"
            if cpu_count <= workers
            else f"measured on {cpu_count} core(s)"
        ),
        "passed": True,
    }
    if report["pool_mismatches"] or report["threaded_mismatches"]:
        report["passed"] = False
    if min_speedup and pool_speedup < min_speedup:
        report["passed"] = False
    return report


def write_mp_serving_report(
    report: dict[str, Any], path: str | Path | None = None
) -> Path:
    """Persist the report (default: ``results/BENCH_serve_mp.json``)."""
    target = (
        Path(path) if path is not None else results_dir() / "BENCH_serve_mp.json"
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
