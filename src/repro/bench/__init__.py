"""Benchmark harness: shared fixtures, table rendering, timing, memory."""

from .memory import megabytes, pickled_megabytes
from .reporting import (
    format_table,
    format_value,
    markdown_table,
    print_table,
    report_table,
    results_dir,
)
from .serving import run_serving_benchmark, serving_workload, write_serving_report
from .serving_mp import run_mp_serving_benchmark, write_mp_serving_report
from .sharding import run_shard_benchmark, write_shard_report
from .timing import Timer, mean_query_ms
from .workbench import (
    MAX_SUBSET_SIZE,
    MAX_TRAINING_SAMPLES,
    get_bloom_filter,
    get_cardinality_estimator,
    get_cardinality_pairs,
    get_cardinality_workload,
    get_collection,
    get_ground_truth,
    get_index_pairs,
    get_index_workload,
    get_query_workload,
    get_set_index,
    model_config,
)

__all__ = [
    "megabytes",
    "pickled_megabytes",
    "format_table",
    "format_value",
    "markdown_table",
    "print_table",
    "report_table",
    "results_dir",
    "Timer",
    "mean_query_ms",
    "run_serving_benchmark",
    "run_mp_serving_benchmark",
    "serving_workload",
    "write_serving_report",
    "write_mp_serving_report",
    "run_shard_benchmark",
    "write_shard_report",
    "MAX_SUBSET_SIZE",
    "MAX_TRAINING_SAMPLES",
    "get_collection",
    "get_ground_truth",
    "get_query_workload",
    "get_cardinality_pairs",
    "get_index_pairs",
    "get_cardinality_workload",
    "get_index_workload",
    "get_cardinality_estimator",
    "get_set_index",
    "get_bloom_filter",
    "model_config",
]
