"""Memory accounting helpers (the paper pickles structures and reports MB)."""

from __future__ import annotations

from ..nn.serialize import pickled_size_bytes

__all__ = ["megabytes", "pickled_megabytes"]


def megabytes(num_bytes: int | float) -> float:
    """Bytes -> MB (decimal, as the paper's tables use)."""
    return float(num_bytes) / 1_000_000.0


def pickled_megabytes(obj) -> float:
    """MB of ``pickle.dumps(obj)`` — the paper's memory measurement."""
    return megabytes(pickled_size_bytes(obj))
