"""Sharding benchmark: parallel per-shard build time vs a single worker.

Shard training is embarrassingly parallel — K independent processes, no
shared state — so build time should scale with cores.  This bench times
:class:`repro.shard.ShardedBuilder` at each requested worker count over
the *same* plan and seeds (the outputs are identical by construction; only
wall-clock changes), verifies the built routers against exact ground truth
on a sampled workload, and persists ``results/BENCH_shard.json``.

The report records ``cpu_count``: speedup is bounded by physical cores,
so a 4-worker run on a 1-core container shows pool overhead, not the
speedup a 4-core machine gets from the identical command.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core import ModelConfig, TrainConfig
from ..sets import InvertedIndex, sample_query_workload
from ..shard import ShardedBuilder, ShardPlan
from .reporting import results_dir

__all__ = ["run_shard_benchmark", "write_shard_report"]


def _verify_router(task: str, router, truth: InvertedIndex, queries) -> int:
    """Count ground-truth violations (exactness for index, no false
    negatives for bloom, positivity for cardinality)."""
    violations = 0
    if task == "index":
        found = router.lookup_many(queries)
        for query, position in zip(queries, found):
            if position != truth.first_position(query):
                violations += 1
    elif task == "bloom":
        answers = router.contains_many(queries)
        for query, answer in zip(queries, answers):
            if truth.contains(query) and not answer:
                violations += 1
    else:
        estimates = router.estimate_many(queries)
        violations = int(np.sum(~np.isfinite(estimates) | (estimates < 0)))
    return violations


def run_shard_benchmark(
    collection,
    task: str = "cardinality",
    num_shards: int = 4,
    worker_counts: Sequence[int] = (1, 2, 4),
    num_queries: int = 200,
    epochs: int = 6,
    max_subset_size: int = 3,
    max_training_samples: int | None = 4000,
    seed: int = 0,
) -> dict[str, Any]:
    """Time sharded builds across ``worker_counts`` and verify the routers.

    Returns a JSON-ready dict with per-worker-count build seconds, the
    speedup of the largest worker count over one worker, the machine's
    ``cpu_count``, and the verification violation counts (all zero on a
    healthy build).
    """
    plan = ShardPlan.contiguous(collection, num_shards)
    truth = InvertedIndex(collection)
    queries = sample_query_workload(
        collection,
        num_queries,
        rng=np.random.default_rng(seed + 1),
        max_subset_size=max_subset_size,
    )

    times: dict[str, float] = {}
    violations: dict[str, int] = {}
    for workers in worker_counts:
        builder = ShardedBuilder(
            plan,
            workers=workers,
            base_seed=seed,
            model_config=ModelConfig(
                kind="lsm", embedding_dim=4, phi_hidden=(8,), rho_hidden=(8,)
            ),
            train_config=TrainConfig(epochs=epochs, batch_size=256, seed=seed),
            max_subset_size=max_subset_size,
            max_training_samples=max_training_samples,
        )
        started = time.perf_counter()
        router = builder.build(task)
        times[str(workers)] = time.perf_counter() - started
        violations[str(workers)] = _verify_router(task, router, truth, queries)

    baseline = times[str(worker_counts[0])]
    best_workers = str(max(worker_counts))
    return {
        "task": task,
        "num_sets": len(collection),
        "num_shards": len(plan),
        "worker_counts": list(worker_counts),
        "num_queries": len(queries),
        "epochs": epochs,
        "cpu_count": os.cpu_count(),
        "build_seconds": times,
        "violations": violations,
        "speedup": baseline / times[best_workers] if times[best_workers] else float("inf"),
        "speedup_workers": int(best_workers),
    }


def write_shard_report(
    report: dict[str, Any], path: str | Path | None = None
) -> Path:
    """Persist the benchmark report (default: ``results/BENCH_shard.json``)."""
    target = Path(path) if path is not None else results_dir() / "BENCH_shard.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
