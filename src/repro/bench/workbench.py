"""Shared, cached experiment fixtures for the benchmark suite.

Training a learned structure is the expensive step, and several paper
tables reuse the same trained models (accuracy, memory, and latency tables
over the same configurations).  This module builds each (dataset, task,
variant) combination once per process and caches it.

Experiment scale is governed by the dataset presets (see
``repro.datasets.registry``; multiply with ``REPRO_SCALE``) and the
training caps below, chosen so the whole suite runs on one CPU core in
minutes while preserving the papers' comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core import (
    LearnedBloomFilter,
    LearnedCardinalityEstimator,
    LearnedSetIndex,
    ModelConfig,
    OutlierRemovalConfig,
    TrainConfig,
)
from ..datasets import load_dataset
from ..sets import InvertedIndex, SetCollection, sample_query_workload
from ..sets.subsets import cardinality_training_pairs, index_training_pairs

__all__ = [
    "MAX_SUBSET_SIZE",
    "MAX_TRAINING_SAMPLES",
    "get_collection",
    "get_ground_truth",
    "get_query_workload",
    "get_cardinality_pairs",
    "get_index_pairs",
    "get_cardinality_workload",
    "get_index_workload",
    "model_config",
    "get_cardinality_estimator",
    "get_set_index",
    "get_bloom_filter",
]

# The paper enumerates subsets up to size 6; at reproduction scale size 4
# keeps the subset universe (and training time) proportionate.
MAX_SUBSET_SIZE = 4
# Upper bound on training pairs per model (uniform subsample beyond this).
MAX_TRAINING_SAMPLES = 40_000
# Defaults shared by the regression tasks.
_EPOCHS = 30
_REMOVAL_EPOCH = 20


@lru_cache(maxsize=None)
def get_collection(name: str) -> SetCollection:
    return load_dataset(name)


@lru_cache(maxsize=None)
def get_ground_truth(name: str) -> InvertedIndex:
    return InvertedIndex(get_collection(name))


@lru_cache(maxsize=None)
def get_query_workload(name: str, num_queries: int = 1000, seed: int = 99):
    return tuple(
        sample_query_workload(
            get_collection(name),
            num_queries,
            rng=np.random.default_rng(seed),
            max_subset_size=MAX_SUBSET_SIZE,
        )
    )


@lru_cache(maxsize=None)
def get_cardinality_pairs(name: str):
    """Cached (subsets, cardinalities) training corpus for one dataset."""
    return cardinality_training_pairs(
        get_collection(name),
        max_subset_size=MAX_SUBSET_SIZE,
        max_samples=MAX_TRAINING_SAMPLES,
        rng=np.random.default_rng(7),
    )


@lru_cache(maxsize=None)
def get_index_pairs(name: str):
    """Cached (subsets, first positions) training corpus for one dataset."""
    return index_training_pairs(
        get_collection(name),
        max_subset_size=MAX_SUBSET_SIZE,
        max_samples=MAX_TRAINING_SAMPLES,
        rng=np.random.default_rng(8),
    )


@lru_cache(maxsize=None)
def get_cardinality_workload(name: str, num_queries: int = 600, seed: int = 99):
    """Query workload for the cardinality task, drawn from trained subsets.

    The paper generates *all* subsets as training data precisely because
    supervised estimators are not expected to generalize to unseen queries
    (§7.1.1); at reproduction scale the corpus is subsampled, so workloads
    are drawn from the trained subsets to preserve that setting.  The
    generalization gap to unseen subsets is measured separately in the
    ablation benches.
    """
    subsets, cardinalities = get_cardinality_pairs(name)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        len(subsets), size=min(num_queries, len(subsets)), replace=False
    )
    return (
        tuple(subsets[i] for i in chosen),
        np.asarray([cardinalities[i] for i in chosen], dtype=np.float64),
    )


@lru_cache(maxsize=None)
def get_index_workload(name: str, num_queries: int = 300, seed: int = 98):
    """Query workload for the index task (subset -> first position)."""
    subsets, positions = get_index_pairs(name)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        len(subsets), size=min(num_queries, len(subsets)), replace=False
    )
    return (
        tuple(subsets[i] for i in chosen),
        np.asarray([positions[i] for i in chosen], dtype=np.int64),
    )


def model_config(kind: str, task: str, seed: int = 0) -> ModelConfig:
    """The paper's per-task architecture choices (§8.1).

    Membership uses the smallest models (embedding 2, 8 neurons); indexing
    uses small models; cardinality estimation uses wider ``rho`` networks.
    """
    if task == "bloom":
        return ModelConfig(
            kind=kind, embedding_dim=2, phi_hidden=(16,), rho_hidden=(8, 8), seed=seed
        )
    if task == "index":
        return ModelConfig(
            kind=kind, embedding_dim=8, phi_hidden=(32,), rho_hidden=(32,), seed=seed
        )
    if task == "cardinality":
        return ModelConfig(
            kind=kind, embedding_dim=8, phi_hidden=(32,), rho_hidden=(64,), seed=seed
        )
    raise ValueError(f"unknown task {task!r}")


@dataclass(frozen=True)
class _Variants:
    """String keys used across the bench files."""

    kinds = ("lsm", "clsm")


@lru_cache(maxsize=None)
def get_cardinality_estimator(
    name: str, kind: str, hybrid: bool
) -> LearnedCardinalityEstimator:
    removal = (
        OutlierRemovalConfig(percentile=90.0, at_epochs=(_REMOVAL_EPOCH,))
        if hybrid
        else None
    )
    return LearnedCardinalityEstimator.build(
        get_collection(name),
        model_config=model_config(kind, "cardinality"),
        train_config=TrainConfig(
            epochs=_EPOCHS, batch_size=1024, lr=5e-3, loss="mse", seed=0
        ),
        removal=removal,
        max_subset_size=MAX_SUBSET_SIZE,
        max_training_samples=MAX_TRAINING_SAMPLES,
        rng=np.random.default_rng(0),
        training_pairs=get_cardinality_pairs(name),
    )


@lru_cache(maxsize=None)
def get_set_index(
    name: str,
    kind: str,
    percentile: float | None = 90.0,
    error_range_length: int = 100,
) -> LearnedSetIndex:
    removal = (
        OutlierRemovalConfig(percentile=percentile, at_epochs=(_REMOVAL_EPOCH,))
        if percentile is not None
        else None
    )
    return LearnedSetIndex.build(
        get_collection(name),
        model_config=model_config(kind, "index"),
        train_config=TrainConfig(
            epochs=_EPOCHS, batch_size=1024, lr=5e-3, loss="mse", seed=1
        ),
        removal=removal,
        max_subset_size=MAX_SUBSET_SIZE,
        max_training_samples=MAX_TRAINING_SAMPLES,
        error_range_length=error_range_length,
        rng=np.random.default_rng(1),
        training_pairs=get_index_pairs(name),
    )


@lru_cache(maxsize=None)
def get_bloom_filter(name: str, kind: str) -> LearnedBloomFilter:
    return LearnedBloomFilter.build(
        get_collection(name),
        model_config=model_config(kind, "bloom"),
        train_config=TrainConfig(
            epochs=25, batch_size=1024, lr=5e-3, loss="bce", seed=2
        ),
        max_subset_size=3,
        max_positive_samples=MAX_TRAINING_SAMPLES,
        num_negative_samples=min(MAX_TRAINING_SAMPLES, 20_000),
        rng=np.random.default_rng(2),
    )
