"""BENCH_infer — frozen-plan speedup vs the autograd forward.

Times batched inference through the autograd ``model.predict`` path and
through each frozen plan variant on the same query batch, for all three
learned structures, and verifies the variants' gate metrics while at it.
The headline number is the float32-plan speedup at batch >= 256 (ROADMAP
item 1 targets >= 10x); the CI smoke reruns this with a small model and a
relaxed ``min_speedup`` so container jitter cannot flake the build.
"""

from __future__ import annotations

import json
import time
from typing import Sequence

import numpy as np

from ..core.cardinality import LearnedCardinalityEstimator
from ..core.config import ModelConfig
from ..core.index import LearnedSetIndex
from ..core.membership import LearnedBloomFilter
from ..core.training import TrainConfig
from ..infer import GateConfig, freeze_structure
from ..sets.collection import SetCollection
from .reporting import print_table, results_dir

__all__ = ["run_infer_bench"]


def _synthetic_collection(num_sets: int, universe: int, seed: int) -> SetCollection:
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(num_sets):
        size = int(rng.integers(2, 7))
        sets.append(tuple(sorted(set(rng.integers(0, universe, size=size).tolist()))))
    return SetCollection(sets)


def _query_batch(universe: int, batch_size: int, seed: int) -> list[tuple[int, ...]]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(batch_size):
        size = int(rng.integers(1, 5))
        queries.append(tuple(sorted(set(rng.integers(0, universe, size=size).tolist()))))
    return queries


def _best_ms(fn, repeats: int) -> float:
    """Best-of-N wall clock in milliseconds (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def _bench_structure(structure, kind: str, queries, repeats: int,
                     gates: GateConfig) -> dict:
    report = freeze_structure(structure, gates=gates)
    part = report.parts[0]
    plans = part["plans"]
    model = structure.model
    model.predict(queries)  # warm both paths before timing
    autograd_ms = _best_ms(lambda: model.predict(queries), repeats)
    reference = model.predict(queries)
    variants = {}
    for name, plan in sorted(plans.variants.items()):
        plan(queries)
        plan_ms = _best_ms(lambda: plan(queries), repeats)
        variants[name] = {
            "ms": plan_ms,
            "speedup": autograd_ms / plan_ms if plan_ms > 0 else float("inf"),
            "max_abs_delta": float(np.max(np.abs(plan(queries) - reference))),
            "size_bytes": plan.size_bytes(),
            "bits": plan.bits,
            "accepted": True,
            "metrics": part["reports"][name]["metrics"],
        }
    for name, entry in part["reports"].items():
        if name not in variants:
            variants[name] = {
                "accepted": False,
                "reason": entry["reason"],
                "metrics": entry["metrics"],
            }
    return {
        "kind": kind,
        "folded": plans.active_plan.meta.get("folded"),
        "active": plans.active,
        "autograd_ms": autograd_ms,
        "variants": variants,
    }


def run_infer_bench(
    num_sets: int = 400,
    universe: int = 500,
    batch_size: int = 1024,
    repeats: int = 7,
    epochs: int = 3,
    seed: int = 0,
    min_speedup: float = 10.0,
    structures: Sequence[str] = ("cardinality", "index", "bloom"),
    model_config: ModelConfig | None = None,
    write_json: bool = True,
) -> dict:
    """Build, freeze, and time all three structures; returns the report.

    The verdict requires the float32 plan to beat the autograd path by
    ``min_speedup`` on every benchmarked structure AND every published
    variant to sit inside its accuracy gate.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    collection = _synthetic_collection(num_sets, universe, seed)
    queries = _query_batch(universe, batch_size, seed + 1)
    gates = GateConfig(probe_seed=seed)
    # A representative paper config (deep phi, 64-wide MLPs): folding the
    # whole per-element phi stack into the plan table is exactly where the
    # frozen path pulls ahead of the per-layer autograd forward.
    model_config = model_config or ModelConfig(
        embedding_dim=64, phi_hidden=(128, 64), rho_hidden=(64,)
    )
    train = TrainConfig(epochs=epochs, seed=seed)
    results = {}
    if "cardinality" in structures:
        estimator = LearnedCardinalityEstimator.build(
            collection, model_config=model_config, train_config=train,
            max_subset_size=3,
        )
        results["cardinality"] = _bench_structure(
            estimator, "cardinality", queries, repeats, gates
        )
    if "index" in structures:
        index = LearnedSetIndex.build(
            collection, model_config=model_config, train_config=train,
            max_subset_size=2,
        )
        results["index"] = _bench_structure(index, "index", queries, repeats, gates)
    if "bloom" in structures:
        bloom = LearnedBloomFilter.build(
            collection, model_config=model_config,
            train_config=TrainConfig(epochs=epochs, seed=seed, loss="bce"),
            max_subset_size=3,
        )
        results["bloom"] = _bench_structure(bloom, "bloom", queries, repeats, gates)

    speedups = [
        entry["variants"]["float32"]["speedup"] for entry in results.values()
    ]
    all_accepted = all(
        variant.get("accepted", False)
        for entry in results.values()
        for variant in entry["variants"].values()
    )
    passed = bool(speedups) and min(speedups) >= min_speedup and all_accepted
    report = {
        "bench": "infer",
        "batch_size": batch_size,
        "model_config": {
            "embedding_dim": model_config.embedding_dim,
            "phi_hidden": list(model_config.phi_hidden),
            "rho_hidden": list(model_config.rho_hidden),
        },
        "repeats": repeats,
        "seed": seed,
        "min_speedup": min_speedup,
        "min_float32_speedup": min(speedups) if speedups else 0.0,
        "all_variants_accepted": all_accepted,
        "passed": passed,
        "structures": results,
    }

    rows = []
    for kind, entry in results.items():
        for name, variant in sorted(entry["variants"].items()):
            if not variant.get("accepted"):
                rows.append([kind, name, "-", "-", "rejected"])
                continue
            rows.append([
                kind,
                name,
                variant["ms"],
                variant["speedup"],
                variant["max_abs_delta"],
            ])
        rows.append([kind, "autograd", entry["autograd_ms"], 1.0, 0.0])
    print_table(
        ["structure", "path", "batch ms", "speedup", "max |delta|"],
        rows,
        title=f"BENCH_infer (batch={batch_size})",
    )
    if write_json:
        path = results_dir() / "BENCH_infer.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {path}")
    return report
