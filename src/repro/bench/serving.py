"""Serving benchmark: concurrent batched throughput vs the serial loop.

The paper measures per-query latency by running queries one at a time
(§8's methodology); this bench measures what the serving layer adds on top
of that baseline: ``N`` client threads drive a :class:`SetServer` over the
same workload, and the report compares queries-per-second, records the
latency percentiles (p50/p95/p99), and captures the coalescing and cache
counters.  Results are persisted as ``BENCH_serve.json`` so CI and
EXPERIMENTS.md can track the speedup over time.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..serve import BatchPolicy, SetServer, detect_kind
from ..sets import sample_query_workload
from .reporting import results_dir

__all__ = [
    "run_serving_benchmark",
    "serving_workload",
    "write_serving_report",
]


def serving_workload(
    collection,
    num_queries: int,
    max_subset_size: int = 4,
    seed: int = 1234,
    duplicate_fraction: float = 0.25,
) -> list[tuple[int, ...]]:
    """A serving-shaped workload: sampled queries plus a hot repeated tail.

    Real query streams are skewed — a fraction of queries repeat hot
    subsets — which is what both the result cache and the batch-level
    dedupe exploit.  ``duplicate_fraction`` of the stream re-issues queries
    drawn from the first tenth of the sample.
    """
    rng = np.random.default_rng(seed)
    base = [
        tuple(query)
        for query in sample_query_workload(
            collection, num_queries, rng=rng, max_subset_size=max_subset_size
        )
    ]
    hot = base[: max(len(base) // 10, 1)]
    for position in rng.choice(
        len(base), size=int(len(base) * duplicate_fraction), replace=False
    ):
        base[position] = hot[int(rng.integers(len(hot)))]
    return base


def _single_query_fn(structure, kind: str):
    if kind == "cardinality":
        return structure.estimate
    if kind == "index":
        return structure.lookup
    return structure.contains


def run_serving_benchmark(
    structure,
    queries: Sequence[tuple[int, ...]],
    threads: int = 8,
    policy: BatchPolicy | None = None,
    cache_size: int = 4096,
) -> dict[str, Any]:
    """Serial loop vs threaded server over the same workload.

    Returns a flat dict (JSON-ready) with ``serial_qps``, ``served_qps``,
    ``speedup``, latency percentiles, and the server's full stats.  Also
    asserts elementwise agreement between both runs — a serving layer that
    is fast but wrong is not a win.
    """
    kind = detect_kind(structure)
    policy = policy or BatchPolicy()
    single = _single_query_fn(structure, kind)

    started = time.perf_counter()
    serial_results = [single(query) for query in queries]
    serial_seconds = time.perf_counter() - started
    serial_qps = len(queries) / serial_seconds if serial_seconds else float("inf")

    served_results: list[Any] = [None] * len(queries)
    with SetServer(structure, policy=policy, cache_size=cache_size) as server:
        slices = [range(tid, len(queries), threads) for tid in range(threads)]

        def drive(rows) -> None:
            # Open-loop submission: enqueue the whole slice, then gather,
            # so the micro-batcher sees real concurrency rather than one
            # in-flight request per thread.
            futures = [(row, server.submit(queries[row])) for row in rows]
            for row, future in futures:
                served_results[row] = future.result(timeout=60.0)

        workers = [
            threading.Thread(target=drive, args=(rows,), name=f"loadgen-{i}")
            for i, rows in enumerate(slices)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        served_seconds = time.perf_counter() - started
        stats = server.stats_dict()

    served_qps = len(queries) / served_seconds if served_seconds else float("inf")
    mismatches = sum(
        1 for a, b in zip(serial_results, served_results) if not _agrees(a, b)
    )
    report = {
        "kind": kind,
        "num_queries": len(queries),
        "threads": threads,
        "max_batch_size": policy.max_batch_size,
        "max_wait_ms": policy.max_wait_ms,
        "cache_size": cache_size,
        "serial_seconds": serial_seconds,
        "served_seconds": served_seconds,
        "serial_qps": serial_qps,
        "served_qps": served_qps,
        "speedup": served_qps / serial_qps if serial_qps else float("inf"),
        "mismatches": mismatches,
        "stats": stats,
    }
    report.update(
        {k: stats[k] for k in ("p50_ms", "p95_ms", "p99_ms", "mean_batch_size")}
    )
    return report


def _agrees(a: Any, b: Any) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return abs(float(a) - float(b)) <= 1e-9 * max(1.0, abs(float(a)))
    return a == b


def write_serving_report(
    report: dict[str, Any], path: str | Path | None = None
) -> Path:
    """Persist the benchmark report (default: ``results/BENCH_serve.json``)."""
    target = Path(path) if path is not None else results_dir() / "BENCH_serve.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target
