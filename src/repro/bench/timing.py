"""Timing helpers for the execution-time tables.

The paper measures average per-query latency by running each query
*individually* ("to mimic the behavior of a real query system"), which is
what :func:`mean_query_ms` does.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

__all__ = ["Timer", "mean_query_ms"]


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def mean_query_ms(
    query_fn: Callable, queries: Sequence, warmup: int = 3
) -> float:
    """Average milliseconds per query, one call at a time.

    A few warm-up calls are excluded so one-time allocation effects do not
    skew small workloads.
    """
    if not len(queries):
        raise ValueError("need at least one query")
    for query in queries[: min(warmup, len(queries))]:
        query_fn(query)
    started = time.perf_counter()
    for query in queries:
        query_fn(query)
    elapsed = time.perf_counter() - started
    return elapsed / len(queries) * 1000.0
