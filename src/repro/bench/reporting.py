"""Table rendering for the benchmark harness.

Every benchmark prints the rows of its paper table/figure through these
helpers so the regenerated results are easy to eyeball against the paper
and to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Sequence

__all__ = [
    "format_value",
    "format_table",
    "print_table",
    "markdown_table",
    "report_table",
    "results_dir",
]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting (floats get adaptive precision)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 10:
        return f"{value:.2f}"
    if magnitude >= 0.01:
        return f"{value:.4f}"
    return f"{value:.2e}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> None:
    """Print an aligned ASCII table to stdout."""
    print()
    print(format_table(headers, rows, title=title))


def results_dir() -> Path:
    """Directory the benchmark tables are persisted to.

    Defaults to ``./results``; override with the ``REPRO_RESULTS_DIR``
    environment variable.
    """
    directory = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def report_table(
    experiment_id: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    """Print a table AND persist it under ``results/<experiment_id>.txt``.

    pytest captures stdout, so the persisted copy is what survives a
    ``pytest benchmarks/`` run; EXPERIMENTS.md is assembled from these
    files.  Repeated calls with the same id append (several datasets per
    experiment).
    """
    text = format_table(headers, rows, title=title)
    print()
    print(text)
    path = results_dir() / f"{experiment_id}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n\n")


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render the same data as a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
    return "\n".join(lines)
